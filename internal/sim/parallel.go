package sim

import (
	"runtime"

	"suu/internal/model"
	"suu/internal/sched"
	"suu/internal/stats"
)

// Parallelizable reports whether EstimateParallel can fan pol out
// across workers. Policies that implement sched.OutcomeObserver carry
// mutable per-run state fed back by the simulator, so their
// repetitions must run sequentially; everything else (oblivious
// schedules, regimens, stationary adaptive policies — including every
// sched.Memoizable policy the compiled adaptive engine accepts) is
// safe to share read-only across workers.
func Parallelizable(pol sched.Policy) bool {
	_, observes := pol.(sched.OutcomeObserver)
	return !observes
}

// EstimateParallel is Estimate fanned out over workers. Each
// repetition derives its RNG stream from (seed, rep) exactly as the
// sequential version does, and per-chunk aggregates merge in a fixed
// order, so the returned summary is bit-identical to Estimate's
// regardless of scheduling — parallelism changes only wall-clock
// time.
//
// The policy is shared across workers, which requires
// Parallelizable(pol); when it is false (the policy observes
// outcomes), EstimateParallel IGNORES the concurrency argument and
// falls back to the sequential path — identical results, no fan-out.
// That decision used to be invisible; EstimateParallelInfo returns it
// as EngineUsed.Workers == 1, and harnesses that persist results
// should call that form. concurrency <= 0 selects GOMAXPROCS.
func EstimateParallel(in *model.Instance, pol sched.Policy, reps, maxSteps int, seed int64, concurrency int) (stats.Summary, int) {
	sum, inc, _ := EstimateParallelInfo(in, pol, reps, maxSteps, seed, concurrency)
	return sum, inc
}

// EstimateParallelInfo is EstimateParallel plus the EngineUsed record:
// which engine ran the repetitions and the effective worker count
// after the parallelizability check — 1 when an observer policy
// silently degraded the requested fan-out to sequential, which is how
// grid rows and BENCH_sim.json record the engine that actually ran.
func EstimateParallelInfo(in *model.Instance, pol sched.Policy, reps, maxSteps int, seed int64, concurrency int) (stats.Summary, int, EngineUsed) {
	if reps <= 0 {
		panic("sim: reps must be positive")
	}
	return estimateChunked(in, pol, reps, maxSteps, seed, effectiveWorkers(pol, concurrency))
}

// effectiveWorkers resolves a requested concurrency against the
// policy's parallelizability: observer policies always run
// sequentially, and concurrency <= 0 selects GOMAXPROCS. Shared by
// EstimateParallelInfo and the Prepared form so both degrade
// identically.
func effectiveWorkers(pol sched.Policy, concurrency int) int {
	if !Parallelizable(pol) || concurrency == 1 {
		return 1
	}
	if concurrency <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return concurrency
}
