package sim

import (
	"math/rand"
	"runtime"
	"sync"

	"suu/internal/model"
	"suu/internal/sched"
	"suu/internal/stats"
)

// EstimateParallel is Estimate fanned out over GOMAXPROCS workers.
// Each repetition derives its RNG from (seed, rep) exactly as the
// sequential version does, so the returned summary is byte-identical
// to Estimate's regardless of scheduling — parallelism changes only
// wall-clock time.
//
// The policy is shared across workers; oblivious schedules and
// regimens are read-only and safe. Policies with mutable state
// (learning policies) must use the sequential Estimate — pass
// concurrency 1 or call Estimate directly. concurrency <= 0 selects
// GOMAXPROCS.
func EstimateParallel(in *model.Instance, pol sched.Policy, reps, maxSteps int, seed int64, concurrency int) (stats.Summary, int) {
	if reps <= 0 {
		panic("sim: reps must be positive")
	}
	if _, stateful := pol.(sched.OutcomeObserver); stateful || concurrency == 1 {
		// Stateful policies cannot run concurrently; fall back.
		return Estimate(in, pol, reps, maxSteps, seed)
	}
	if concurrency <= 0 {
		concurrency = runtime.GOMAXPROCS(0)
	}
	if concurrency > reps {
		concurrency = reps
	}
	xs := make([]float64, reps)
	incompletes := make([]int, concurrency)
	var wg sync.WaitGroup
	next := make(chan int, reps)
	for r := 0; r < reps; r++ {
		next <- r
	}
	close(next)
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := range next {
				rng := rand.New(rand.NewSource(seed + int64(r)*1_000_003))
				res := Run(in, pol, maxSteps, rng)
				if !res.Completed {
					incompletes[w]++
				}
				xs[r] = float64(res.Makespan)
			}
		}(w)
	}
	wg.Wait()
	incomplete := 0
	for _, c := range incompletes {
		incomplete += c
	}
	return stats.Summarize(xs), incomplete
}
