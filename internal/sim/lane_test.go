package sim

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"suu/internal/core"
	"suu/internal/model"
	"suu/internal/sched"
	"suu/internal/workload"
)

// withMode runs f under the given BitParallel dispatch mode.
func withMode(m BitParallelMode, f func()) {
	defer SetBitParallel(m)()
	f()
}

// TestLaneBernoulliOracleBit pins laneBernoulli's core property: a
// decided lane's outcome is identical whether it is drawn as part of
// the full 64-lane mask or alone — the property that makes the scalar
// one-lane-at-a-time oracle an exact replay of the lane engine. Also
// pins the p<=0 / p>=1 shortcuts and determinism.
func TestLaneBernoulliOracleBit(t *testing.T) {
	var tr Stream
	rng := rand.New(NewStream(SeedFor(7, "lane-bern")))
	ps := []float64{0, 1, 0.5, 0.25, 1e-9, 1 - 1e-9, 0.3, 0.9999, 0.317}
	for i := 0; i < 200; i++ {
		ps = append(ps, rng.Float64())
	}
	for i, p := range ps {
		gseed, a, b := int64(i), int64(i*3), int64(i%5)
		full := laneBernoulli(&tr, gseed, a, b, p, ^uint64(0))
		again := laneBernoulli(&tr, gseed, a, b, p, ^uint64(0))
		if full != again {
			t.Fatalf("p=%v: not deterministic: %x vs %x", p, full, again)
		}
		if p <= 0 && full != 0 {
			t.Fatalf("p=0 produced successes: %x", full)
		}
		if p >= 1 && full != ^uint64(0) {
			t.Fatalf("p=1 produced failures: %x", full)
		}
		for l := uint(0); l < LaneWidth; l++ {
			solo := laneBernoulli(&tr, gseed, a, b, p, uint64(1)<<l)
			if solo>>l&1 != full>>l&1 {
				t.Fatalf("p=%v lane %d: solo bit %d != full-mask bit %d",
					p, l, solo>>l&1, full>>l&1)
			}
		}
	}
}

// TestLaneBernoulliAcceptanceRate checks the drawn masks hit the
// target probability: the bit ladder compares each lane's uniform
// against p's exact binary expansion, so the empirical rate over many
// trials must sit within a generous normal CI of p.
func TestLaneBernoulliAcceptanceRate(t *testing.T) {
	var tr Stream
	const trials = 4000 // × 64 lanes
	for _, p := range []float64{0.25, 0.317, 0.5, 0.9, 0.0625, 0.993} {
		wins := 0
		for a := 0; a < trials; a++ {
			w := laneBernoulli(&tr, 11, int64(a), 0, p, ^uint64(0))
			for ; w != 0; w &= w - 1 {
				wins++
			}
		}
		n := float64(trials * LaneWidth)
		got := float64(wins) / n
		tol := 5 * math.Sqrt(p*(1-p)/n)
		if math.Abs(got-p) > tol {
			t.Errorf("p=%v: acceptance rate %v (tol %v)", p, got, tol)
		}
	}
}

// TestLaneObliviousMatchesScalarRemapExactly is the oblivious lane
// engine's exactness bar: identical stats.Summary and incomplete
// count to the scalar compiled walk replayed under the lane stream
// remap, for rep counts around and away from lane-width multiples, at
// workers 1/4/GOMAXPROCS.
func TestLaneObliviousMatchesScalarRemapExactly(t *testing.T) {
	in, o := chainsFixture()
	const cap, seed = 100000, 23
	for _, reps := range []int{1, 63, 64, 65, 256, 300, 1000} {
		for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			var engL, engO EngineUsed
			sL := summaryOf(t, in, o, reps, cap, seed, workers, BitParallelOn, &engL)
			sO := summaryOf(t, in, o, reps, cap, seed, workers, bitParallelOracle, &engO)
			if engL.Engine != EngineLane || engL.Lanes != LaneWidth {
				t.Fatalf("reps %d workers %d: lane engine reported %+v", reps, workers, engL)
			}
			if engO.Engine != EngineLane {
				t.Fatalf("oracle mode reported %+v", engO)
			}
			if sL != sO {
				t.Errorf("reps %d workers %d: lane %+v != oracle %+v", reps, workers, sL, sO)
			}
		}
	}
}

// summaryOf runs EstimateParallelInfo under the given lane mode and
// returns the summary and incomplete count as one comparable value.
func summaryOf(t *testing.T, in *model.Instance, pol sched.Policy, reps, cap int, seed int64, workers int, mode BitParallelMode, eng *EngineUsed) [2]interface{} {
	t.Helper()
	var out [2]interface{}
	withMode(mode, func() {
		sum, inc, e := EstimateParallelInfo(in, pol, reps, cap, seed, workers)
		out[0], out[1] = sum, inc
		*eng = e
	})
	return out
}

// TestLaneAdaptiveMatchesScalarRemapExactly mirrors the oblivious
// bar for the adaptive table walk, across every stationary-policy
// family of the compiled adaptive engine.
func TestLaneAdaptiveMatchesScalarRemapExactly(t *testing.T) {
	const cap, seed = 100000, 29
	for name, tc := range adaptiveParityCases(t) {
		t.Run(name, func(t *testing.T) {
			for _, reps := range []int{64, 65, 500} {
				for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
					var engL, engO EngineUsed
					sL := summaryOf(t, tc.in, tc.pol, reps, cap, seed, workers, BitParallelOn, &engL)
					sO := summaryOf(t, tc.in, tc.pol, reps, cap, seed, workers, bitParallelOracle, &engO)
					if engL.Engine != EngineLaneAdaptive || engL.Lanes != LaneWidth {
						t.Fatalf("reps %d: lane engine reported %+v", reps, engL)
					}
					if sL != sO {
						t.Errorf("reps %d workers %d: lane %+v != oracle %+v", reps, workers, sL, sO)
					}
				}
			}
		})
	}
}

// TestLaneTailContinuation forces lanes past a short prefix so the
// lane engine's per-lane tail continuation runs, and pins it to the
// oracle (whose tail runs through the scalar walk's continueTail).
func TestLaneTailContinuation(t *testing.T) {
	in, o := chainsFixture()
	short := &sched.Oblivious{M: o.M, Steps: o.Steps[:2], Tail: o.Tail}
	const reps, cap, seed = 500, 100000, 41
	var engL, engO EngineUsed
	sL := summaryOf(t, in, short, reps, cap, seed, 1, BitParallelOn, &engL)
	sO := summaryOf(t, in, short, reps, cap, seed, 1, bitParallelOracle, &engO)
	if engL.Engine != EngineLane {
		t.Fatalf("engine %+v", engL)
	}
	if sL != sO {
		t.Errorf("tail continuation: lane %+v != oracle %+v", sL, sO)
	}
	if sL[1].(int) != 0 {
		t.Errorf("tail continuation left %d incomplete runs", sL[1].(int))
	}
}

// TestLaneParityFuzz hammers the lane/oracle equality with randomized
// instances: random dags and probability matrices with forced p=0 and
// p=1 entries, single-job instances, rep counts not divisible by 64,
// capped horizons that strand unfinished runs, and both engine
// families. Run under -race in CI's engine group.
func TestLaneParityFuzz(t *testing.T) {
	rng := rand.New(NewStream(SeedFor(3, "lane-fuzz")))
	laneRuns := 0
	for iter := 0; iter < 60; iter++ {
		n := 1 + rng.Intn(12)
		m := 1 + rng.Intn(4)
		in := model.New(n, m)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				switch rng.Intn(8) {
				case 0:
					in.SetAt(i, j, 0) // forced certain-failure entry
				case 1:
					in.SetAt(i, j, 1) // forced certain-success entry
				default:
					in.SetAt(i, j, rng.Float64())
				}
			}
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.25 {
					in.Prec.MustEdge(u, v)
				}
			}
		}
		reps := 1 + rng.Intn(200)
		cap := []int{5, 50, 100000}[rng.Intn(3)]
		seed := rng.Int63()
		workers := 1 + rng.Intn(4)

		var pol sched.Policy
		if iter%2 == 0 {
			// Oblivious: random prefix over a topo round-robin tail.
			order, err := in.Prec.TopoOrder()
			if err != nil {
				t.Fatal(err)
			}
			steps := make([]sched.Assignment, 1+rng.Intn(3*n))
			for s := range steps {
				a := make(sched.Assignment, m)
				for i := range a {
					if rng.Intn(5) == 0 {
						a[i] = sched.Idle
					} else {
						a[i] = rng.Intn(n)
					}
				}
				steps[s] = a
			}
			pol = &sched.Oblivious{M: m, Steps: steps, Tail: &sched.TopoRoundRobin{M: m, Order: order}}
		} else {
			pol = &core.AdaptivePolicy{In: in}
		}

		var engL, engO EngineUsed
		sL := summaryOf(t, in, pol, reps, cap, seed, workers, BitParallelOn, &engL)
		sO := summaryOf(t, in, pol, reps, cap, seed, workers, bitParallelOracle, &engO)
		if engL.Engine != engO.Engine {
			t.Fatalf("iter %d: engines diverged: %q vs %q", iter, engL.Engine, engO.Engine)
		}
		if engL.Lanes == LaneWidth {
			laneRuns++
		}
		if sL != sO {
			t.Errorf("iter %d (n=%d m=%d reps=%d cap=%d engine=%s): lane %+v != oracle %+v",
				iter, n, m, reps, cap, engL.Engine, sL, sO)
		}
	}
	if laneRuns < 30 {
		t.Errorf("only %d/60 fuzz cases exercised the lane engine; fixture drifted", laneRuns)
	}
}

// TestLaneAutoDispatchByRepCount pins the BitParallel knob semantics:
// Auto switches on the BitParallelAutoMinReps floor, On forces lanes
// at any rep count, Off always runs the scalar engines.
func TestLaneAutoDispatchByRepCount(t *testing.T) {
	in, o := chainsFixture()
	check := func(mode BitParallelMode, reps int, want string, wantLanes int) {
		t.Helper()
		withMode(mode, func() {
			_, _, eng := EstimateInfo(in, o, reps, 100000, 3)
			if eng.Engine != want || eng.Lanes != wantLanes {
				t.Errorf("mode %d reps %d: engine %+v, want %s/lanes=%d", mode, reps, eng, want, wantLanes)
			}
		})
	}
	check(BitParallelAuto, BitParallelAutoMinReps-1, EngineCompiled, 0)
	check(BitParallelAuto, BitParallelAutoMinReps, EngineLane, LaneWidth)
	check(BitParallelOff, 10000, EngineCompiled, 0)
	check(BitParallelOn, 10, EngineLane, LaneWidth)

	// The generic engine never grows lanes, whatever the knob says.
	generic := sched.PolicyFunc(func(st *sched.State) sched.Assignment { return o.At(st.Step) })
	withMode(BitParallelOn, func() {
		_, _, eng := EstimateInfo(in, generic, 1000, 100000, 3)
		if eng.Engine != EngineGeneric || eng.Lanes != 0 {
			t.Errorf("generic policy dispatched to %+v", eng)
		}
	})
}

// TestLaneDemotionThresholdInvariance: the adaptive divergence
// threshold is a pure performance knob. Because the demoted scalar
// walk consumes the same position-keyed trials as the lockstep walk,
// every threshold — including demote-immediately — must produce
// identical results.
func TestLaneDemotionThresholdInvariance(t *testing.T) {
	in := workload.Independent(workload.Config{Jobs: 10, Machines: 3, Seed: 42})
	pol := &core.AdaptivePolicy{In: in}
	const reps, cap, seed = 700, 100000, 53
	old := laneAdaptDemoteStates
	defer func() { laneAdaptDemoteStates = old }()

	var want [2]interface{}
	for i, thr := range []int{0, 1, 4, 16, LaneWidth} {
		laneAdaptDemoteStates = thr
		var eng EngineUsed
		got := summaryOf(t, in, pol, reps, cap, seed, 1, BitParallelOn, &eng)
		if eng.Engine != EngineLaneAdaptive {
			t.Fatalf("threshold %d: engine %+v", thr, eng)
		}
		if i == 0 {
			want = got
		} else if got != want {
			t.Errorf("threshold %d changed results: %+v vs %+v", thr, got, want)
		}
	}
}

// TestLaneDeterministicAcrossConcurrency: the lane engine inherits
// the estimators' central reproducibility contract — byte-identical
// summaries at every concurrency — because chunk boundaries stay
// group-aligned and group draws depend only on (seed, group).
func TestLaneDeterministicAcrossConcurrency(t *testing.T) {
	defer SetBitParallel(BitParallelOn)()
	in, o := chainsFixture()
	want, wantInc, eng := EstimateParallelInfo(in, o, 1500, 100000, 9, 1)
	if eng.Engine != EngineLane {
		t.Fatalf("engine %+v", eng)
	}
	for _, conc := range []int{4, runtime.GOMAXPROCS(0), 0} {
		got, gotInc, _ := EstimateParallelInfo(in, o, 1500, 100000, 9, conc)
		if got != want || gotInc != wantInc {
			t.Errorf("concurrency %d: %+v/%d differs from sequential %+v/%d",
				conc, got, gotInc, want, wantInc)
		}
	}
}

// TestLaneGroupAllocationFree proves a lane group walk allocates
// nothing once the worker exists (prefix-resident groups).
func TestLaneGroupAllocationFree(t *testing.T) {
	in, o := chainsFixture()
	c := compileOblivious(in, o)
	if c == nil {
		t.Fatal("compile failed")
	}
	w := newLaneOblivRunner(c, 7)
	w.runGroup(0, LaneWidth, 100000)
	if w.tailR != nil {
		t.Fatal("fixture unexpectedly hit the tail; enlarge the prefix")
	}
	allocs := testing.AllocsPerRun(50, func() {
		w.runGroup(1, LaneWidth, 100000)
	})
	if allocs != 0 {
		t.Errorf("oblivious lane group: %v allocs/run, want 0", allocs)
	}

	ain := workload.Independent(workload.Config{Jobs: 10, Machines: 3, Seed: 42})
	apol := &core.AdaptivePolicy{In: ain}
	ac := compileAdaptive(ain, apol, adaptiveCompileBudget)
	if ac == nil {
		t.Fatal("adaptive compile failed")
	}
	aw := newLaneAdaptRunner(ac, 7)
	aw.runGroup(0, LaneWidth, 100000)
	allocs = testing.AllocsPerRun(50, func() {
		aw.runGroup(1, LaneWidth, 100000)
	})
	if allocs != 0 {
		t.Errorf("adaptive lane group: %v allocs/run, want 0", allocs)
	}
}

// TestLaneMassParity pins satellite mass tracking on the lane engines:
// MassWithinHorizon under the wordwise lane engine and under the
// one-lane-at-a-time oracle must agree EXACTLY — threshold counts are
// integers, so any per-lane mass divergence shows up as a changed
// fraction. Covers both compiled engines, with terminal splicing on
// (the lane walk and the oracle splice through the same code on the
// same pinned streams).
func TestLaneMassParity(t *testing.T) {
	in, o := chainsFixture()
	apol := &core.AdaptivePolicy{In: in}
	const reps, seed = 1000, 29
	for name, tc := range map[string]struct {
		pol     sched.Policy
		horizon int
	}{
		"oblivious": {o, 30},
		"adaptive":  {apol, 8},
	} {
		for _, threshold := range []float64{0.25, 1.0} {
			var lane, oracle []float64
			withMode(BitParallelOn, func() {
				lane = MassWithinHorizon(in, tc.pol, tc.horizon, reps, threshold, seed)
			})
			withMode(bitParallelOracle, func() {
				oracle = MassWithinHorizon(in, tc.pol, tc.horizon, reps, threshold, seed)
			})
			for j := range lane {
				if lane[j] != oracle[j] {
					t.Errorf("%s threshold %v job %d: lane fraction %v != oracle %v",
						name, threshold, j, lane[j], oracle[j])
				}
			}
		}
	}

	// The lane sample is a different draw of the same distribution as
	// the scalar sample: fractions must agree statistically (binomial
	// 6-sigma at 1000 reps), which guards against systematic accrual
	// bugs the oracle comparison alone would share.
	for name, tc := range map[string]struct {
		pol     sched.Policy
		horizon int
	}{
		"oblivious": {o, 30},
		"adaptive":  {apol, 8},
	} {
		var lane, scalar []float64
		withMode(BitParallelOn, func() {
			lane = MassWithinHorizon(in, tc.pol, tc.horizon, reps, 0.25, seed)
		})
		withMode(BitParallelOff, func() {
			scalar = MassWithinHorizon(in, tc.pol, tc.horizon, reps, 0.25, seed)
		})
		for j := range lane {
			p := (lane[j] + scalar[j]) / 2 // pooled: either sample alone can sit at 0 or 1
			sd := math.Sqrt(p * (1 - p) / reps)
			if math.Abs(lane[j]-scalar[j]) > 6*sd+1e-3 {
				t.Errorf("%s job %d: lane fraction %v vs scalar %v (sd %v)",
					name, j, lane[j], scalar[j], sd)
			}
		}
	}
}
