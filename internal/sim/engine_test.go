package sim

import (
	"math"
	"runtime"
	"testing"

	"suu/internal/model"
	"suu/internal/sched"
	"suu/internal/workload"
)

// chainsFixture builds a chains instance with a hand-rolled oblivious
// schedule (windows of ganged steps per job plus a round-robin tail),
// exercising prefix, tail, and precedence paths of both engines.
func chainsFixture() (*model.Instance, *sched.Oblivious) {
	in := workload.Chains(workload.Config{Jobs: 12, Machines: 4, Seed: 5}, 3)
	order, err := in.Prec.TopoOrder()
	if err != nil {
		panic(err)
	}
	var steps []sched.Assignment
	for _, j := range order {
		for k := 0; k < 4; k++ {
			a := make(sched.Assignment, in.M)
			for i := range a {
				a[i] = j
			}
			steps = append(steps, a)
		}
	}
	return in, &sched.Oblivious{
		M:     in.M,
		Steps: steps,
		Tail:  &sched.TopoRoundRobin{M: in.M, Order: order},
	}
}

// TestCompiledMatchesStepEngine pins the compiled oblivious engine to
// the generic step engine: the same schedule run through a PolicyFunc
// wrapper (which disables compilation) must produce the same makespan
// distribution and mass probabilities up to Monte Carlo error.
func TestCompiledMatchesStepEngine(t *testing.T) {
	// Pin the scalar compiled engine: at these rep counts auto dispatch
	// would select the lane engine, whose parity is lane_test.go's job.
	defer SetBitParallel(BitParallelOff)()
	in, o := chainsFixture()
	generic := sched.PolicyFunc(func(st *sched.State) sched.Assignment { return o.At(st.Step) })

	const reps, cap = 4000, 100000
	fast, fastInc := Estimate(in, o, reps, cap, 21)
	slow, slowInc := Estimate(in, generic, reps, cap, 21)
	if fastInc != 0 || slowInc != 0 {
		t.Fatalf("incomplete runs: compiled %d, generic %d", fastInc, slowInc)
	}
	tol := 3*(fast.HalfWidth95+slow.HalfWidth95) + 1e-9
	if math.Abs(fast.Mean-slow.Mean) > tol {
		t.Errorf("compiled mean %v vs step-engine mean %v (tol %v)", fast.Mean, slow.Mean, tol)
	}

	horizon := int(fast.Mean)
	fastFr := MassWithinHorizon(in, o, horizon, reps, 0.5, 31)
	slowFr := MassWithinHorizon(in, generic, horizon, reps, 0.5, 31)
	for j := range fastFr {
		if math.Abs(fastFr[j]-slowFr[j]) > 0.05 {
			t.Errorf("job %d: mass fraction compiled %v vs generic %v", j, fastFr[j], slowFr[j])
		}
	}
}

// TestCompiledTailContinuation forces repetitions past a short prefix
// so the compiled engine's tail continuation runs, and checks it
// still completes and matches the generic engine.
func TestCompiledTailContinuation(t *testing.T) {
	defer SetBitParallel(BitParallelOff)() // pin the scalar engines; see lane_test.go
	in, o := chainsFixture()
	short := &sched.Oblivious{M: o.M, Steps: o.Steps[:2], Tail: o.Tail}
	generic := sched.PolicyFunc(func(st *sched.State) sched.Assignment { return short.At(st.Step) })

	const reps, cap = 2000, 100000
	fast, fastInc := Estimate(in, short, reps, cap, 77)
	slow, slowInc := Estimate(in, generic, reps, cap, 77)
	if fastInc != 0 || slowInc != 0 {
		t.Fatalf("incomplete runs: compiled %d, generic %d", fastInc, slowInc)
	}
	tol := 3*(fast.HalfWidth95+slow.HalfWidth95) + 1e-9
	if math.Abs(fast.Mean-slow.Mean) > tol {
		t.Errorf("compiled mean %v vs step-engine mean %v (tol %v)", fast.Mean, slow.Mean, tol)
	}
}

// TestEstimateDeterministicAcrossConcurrency is the engine's central
// reproducibility contract: the summary and incomplete count are
// byte-identical at every concurrency, for both the compiled and the
// generic engine.
func TestEstimateDeterministicAcrossConcurrency(t *testing.T) {
	in, o := chainsFixture()
	generic := sched.PolicyFunc(func(st *sched.State) sched.Assignment { return o.At(st.Step) })
	for name, pol := range map[string]sched.Policy{"compiled": o, "generic": generic} {
		want, wantInc := EstimateParallel(in, pol, 1500, 100000, 9, 1)
		for _, conc := range []int{4, runtime.GOMAXPROCS(0), 0} {
			got, gotInc := EstimateParallel(in, pol, 1500, 100000, 9, conc)
			if got != want || gotInc != wantInc {
				t.Errorf("%s engine, concurrency %d: %+v/%d differs from sequential %+v/%d",
					name, conc, got, gotInc, want, wantInc)
			}
		}
	}
}

// TestRunnerStepLoopAllocationFree proves the generic step loop
// allocates nothing per run once the runner exists, for both an
// oblivious schedule (prefix + cached tail) and a regimen.
func TestRunnerStepLoopAllocationFree(t *testing.T) {
	in, o := chainsFixture()
	r := NewRunner(in, o)
	var rng Stream
	rng.Reseed(1, 0)
	r.Run(100000, &rng) // warm caches (tail assignments)
	allocs := testing.AllocsPerRun(50, func() {
		rng.Reseed(1, 1)
		if makespan, done := r.Run(100000, &rng); !done || makespan <= 0 {
			t.Fatal("run failed")
		}
	})
	if allocs != 0 {
		t.Errorf("oblivious step loop: %v allocs/run, want 0", allocs)
	}

	reg := sched.NewRegimen(2, 1)
	small := model.New(2, 1)
	small.SetAt(0, 0, 0.5)
	small.SetAt(0, 1, 0.5)
	reg.F[sched.Key([]bool{true, true})] = sched.Assignment{0}
	reg.F[sched.Key([]bool{false, true})] = sched.Assignment{1}
	rr := NewRunner(small, reg)
	rr.Run(100000, &rng)
	allocs = testing.AllocsPerRun(50, func() {
		rng.Reseed(2, 1)
		rr.Run(100000, &rng)
	})
	if allocs != 0 {
		t.Errorf("regimen step loop: %v allocs/run, want 0", allocs)
	}
}

// TestCompiledRepAllocationFree proves a compiled-engine repetition
// allocates nothing after compilation (runs stay inside the prefix).
func TestCompiledRepAllocationFree(t *testing.T) {
	in, o := chainsFixture()
	c := compileOblivious(in, o)
	if c == nil {
		t.Fatal("compile failed")
	}
	w := c.newRunner()
	var rng Stream
	rng.Reseed(1, 0)
	w.run(100000, &rng)
	if w.cont != nil {
		t.Fatal("fixture unexpectedly hit the tail; enlarge the prefix")
	}
	allocs := testing.AllocsPerRun(50, func() {
		rng.Reseed(1, 1)
		w.run(100000, &rng)
	})
	if allocs != 0 {
		t.Errorf("compiled repetition: %v allocs/run, want 0", allocs)
	}
}

// TestEstimateParallelDesyncedP covers the lazy Flat rebuild under
// concurrency: an instance whose P rows were replaced wholesale must
// be re-flattened once, before workers spawn (run under -race in CI).
func TestEstimateParallelDesyncedP(t *testing.T) {
	in := model.New(4, 2)
	in.P = [][]float64{{0.5, 0.5, 0.5, 0.5}, {0.5, 0.5, 0.5, 0.5}} // desync the backing
	pol := sched.PolicyFunc(func(st *sched.State) sched.Assignment {
		a := sched.NewIdle(2)
		k := 0
		for j, e := range st.Eligible {
			if e && k < 2 {
				a[k] = j
				k++
			}
		}
		return a
	})
	sum, inc := EstimateParallel(in, pol, 1200, 10000, 5, 4)
	if inc != 0 || sum.N != 1200 {
		t.Fatalf("sum=%+v inc=%d", sum, inc)
	}
	seq, seqInc := Estimate(in, pol, 1200, 10000, 5)
	if sum != seq || inc != seqInc {
		t.Errorf("parallel %+v differs from sequential %+v", sum, seq)
	}
}

// TestEstimateStreamingMemory keeps Estimate's aggregation honest: a
// large-reps call must not materialize the sample. (Guarded by the
// chunked-accumulator design; this is a regression tripwire on the
// accumulator count.)
func TestEstimateStreamingMemory(t *testing.T) {
	if estimateChunk < 64 {
		t.Fatalf("estimateChunk %d suspiciously small", estimateChunk)
	}
	in := model.New(1, 1)
	in.SetAt(0, 0, 0.9)
	pol := &sched.Oblivious{M: 1, Steps: []sched.Assignment{{0}}}
	sum, inc := Estimate(in, pol, 100_000, 1000, 3)
	if inc != 0 || sum.N != 100_000 {
		t.Fatalf("sum=%+v inc=%d", sum, inc)
	}
	if sum.Mean < 1 || sum.Mean > 1.3 {
		t.Errorf("geometric(0.9) mean %v out of range", sum.Mean)
	}
}
