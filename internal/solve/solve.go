package solve

import (
	"fmt"
	"sort"
	"strings"

	"suu/internal/core"
	"suu/internal/dag"
	"suu/internal/lp"
	"suu/internal/model"
	"suu/internal/opt"
	"suu/internal/sched"
)

// Result is a built schedule plus the metadata the construction
// certifies. It is the registry-level analogue of the public
// suu.Schedule.
type Result struct {
	// Policy is the runnable schedule (oblivious or adaptive).
	Policy sched.Policy
	// Kind names the construction instance ("chains (Thm 4.4)", ...).
	// For class-dependent solvers (forest) it reflects the class built.
	Kind string
	// Guarantee is the paper's bound for this construction on this
	// instance's class.
	Guarantee string
	// Adaptive reports whether the policy reacts to the unfinished set.
	Adaptive bool
	// PrefixLen is the oblivious prefix length (0 for adaptive).
	PrefixLen int
	// CoreLength is the pre-replication certified prefix (0 for
	// adaptive).
	CoreLength int
	// LPValue is the LP optimum T* when an LP was solved.
	LPValue float64
	// LowerBound is the certified lower bound on T_OPT, when available.
	LowerBound float64
	// ExactValue is the exact optimal expected makespan (optimal solver
	// only).
	ExactValue float64
	// ExactStates and ExactTransitions report the value iteration's
	// closed-state count and materialized successor-table entries
	// (optimal solver only).
	ExactStates      int
	ExactTransitions int64
	// MaxLoad and Congestion are the chain-pipeline diagnostics Π_max
	// and post-delay congestion (chain-based solvers only).
	MaxLoad, Congestion int
	// LPPivots, LPRows, LPCols and LPNnz report the LP solve's effort
	// and dimensions for LP-backed constructions (pivots are summed
	// across a decomposition's blocks; dimensions are the largest
	// block's). Zero for combinatorial and adaptive solvers.
	LPPivots, LPRows, LPCols, LPNnz int
	// LPBasis is the optimal simplex basis of the LP solve, exported so
	// warm-start caches (internal/serve) can re-solve an evicted result
	// for the identical instance pivot-free via core.Params.WarmBasis.
	// Non-nil only for constructions with a single direct sparse solve
	// (lp-oblivious); nil under the dense oracle and on lazy or
	// per-block pipelines.
	LPBasis *lp.Basis
	// Exact holds the value iteration's full search counters (optimal
	// solver only) — ExactStates/ExactTransitions plus layer, pruning
	// and closed-form statistics, surfaced by suu-sim -stats.
	Exact *opt.Stats
	// Blocks and Decomp describe the chain decomposition used
	// (forest solver only): block count and method.
	Blocks int
	Decomp string
	// Detail is a one-line human-readable diagnostic for CLIs.
	Detail string
}

// BuildFunc constructs a schedule for the instance under the given
// parameters.
type BuildFunc func(in *model.Instance, par core.Params) (*Result, error)

// Solver is one registered construction.
type Solver struct {
	// ID is the canonical registry key (also the CLI -alg value).
	ID string
	// Aliases are accepted alternative ids (e.g. "greedy" for
	// "greedy-maxp").
	Aliases []string
	// Theorem cites the paper result implemented ("" for baselines and
	// extensions beyond the paper).
	Theorem string
	// Guarantee states the approximation bound at the solver's
	// strongest applicable class.
	Guarantee string
	// Classes lists the precedence classes the guarantee applies to;
	// nil means the solver runs on any dag.
	Classes []dag.Class
	// Oblivious reports whether the built schedule is a fixed timetable
	// (eligible for Auto dispatch, Gantt rendering, serialization).
	Oblivious bool
	// Parallelizable reports whether simulated repetitions of the built
	// policy may be fanned out across goroutines sharing the policy.
	// It must never be more permissive than the engine's runtime check
	// (sim.Parallelizable, which detects sched.OutcomeObserver) and is
	// additionally false for policies with hazards the runtime check
	// cannot see, e.g. the random baseline's shared *rand.Rand. The
	// registry tests enforce the consistency.
	Parallelizable bool
	// Compilable reports whether the built policy is stationary
	// (sched.Memoizable): the simulation engine can memoize one
	// assignment per reachable unfinished-set key and run repetitions
	// as table-driven walks whenever the state space fits the compile
	// budget, with a transparent fallback to the step engine beyond
	// it. False for policies whose assignment depends on execution
	// history (the learner observes outcomes, round-robin reads the
	// step counter, the random baseline draws from a generator) and
	// for oblivious schedules, which have their own compiled engine.
	// The registry tests pin this flag to the built policy's actual
	// interface set.
	Compilable bool
	// Baseline marks the naive reference policies.
	Baseline bool
	// Rank orders Auto dispatch among applicable oblivious solvers
	// (lower = stronger); 0 excludes the solver from Auto.
	Rank int
	// Build constructs the schedule.
	Build BuildFunc
}

// AppliesTo reports whether the solver's guarantee covers class c.
// Solvers with a nil class list run on (and are reported for) any
// class.
func (s Solver) AppliesTo(c dag.Class) bool {
	if len(s.Classes) == 0 {
		return true
	}
	for _, k := range s.Classes {
		if k == c {
			return true
		}
	}
	return false
}

// ClassNames renders the applicable classes for listings ("any" for
// unrestricted solvers).
func (s Solver) ClassNames() string {
	if len(s.Classes) == 0 {
		return "any"
	}
	names := make([]string, len(s.Classes))
	for i, c := range s.Classes {
		names[i] = c.String()
	}
	return strings.Join(names, ", ")
}

var (
	ordered []Solver
	byID    = map[string]int{}
)

// Register adds a solver to the registry. It panics on duplicate or
// empty ids — registration is an init-time programming act, not a
// runtime input.
func Register(s Solver) {
	if s.ID == "" || s.Build == nil {
		panic("solve: solver needs an ID and a Build func")
	}
	keys := append([]string{s.ID}, s.Aliases...)
	for _, k := range keys {
		if _, dup := byID[k]; dup {
			panic(fmt.Sprintf("solve: duplicate solver id %q", k))
		}
	}
	ordered = append(ordered, s)
	for _, k := range keys {
		byID[k] = len(ordered) - 1
	}
}

// Get returns the solver registered under id (or an alias).
func Get(id string) (Solver, bool) {
	i, ok := byID[id]
	if !ok {
		return Solver{}, false
	}
	return ordered[i], true
}

// All returns every registered solver in registration order.
func All() []Solver {
	out := make([]Solver, len(ordered))
	copy(out, ordered)
	return out
}

// IDs returns the canonical solver ids in registration order.
func IDs() []string {
	out := make([]string, len(ordered))
	for i, s := range ordered {
		out[i] = s.ID
	}
	return out
}

// For returns the solvers applicable to class c, in registration
// order.
func For(c dag.Class) []Solver {
	var out []Solver
	for _, s := range ordered {
		if s.AppliesTo(c) {
			out = append(out, s)
		}
	}
	return out
}

// Strongest returns the best-ranked oblivious solver applicable to
// class c — the construction suu.Solve dispatches to. The forest
// solver applies to every class, so Strongest always succeeds on a
// populated registry.
func Strongest(c dag.Class) (Solver, error) {
	best := -1
	for i, s := range ordered {
		if !s.Oblivious || s.Rank == 0 || !s.AppliesTo(c) {
			continue
		}
		if best < 0 || s.Rank < ordered[best].Rank {
			best = i
		}
	}
	if best < 0 {
		return Solver{}, fmt.Errorf("solve: no oblivious solver registered for class %s", c)
	}
	return ordered[best], nil
}

// Auto classifies the instance's precedence dag, picks the strongest
// applicable oblivious construction, and builds it — the registry
// form of the paper's dispatch table.
func Auto(in *model.Instance, par core.Params) (Solver, *Result, error) {
	s, err := Strongest(in.Prec.Classify())
	if err != nil {
		return Solver{}, nil, err
	}
	res, err := s.Build(in, par)
	if err != nil {
		return s, nil, err
	}
	return s, res, nil
}

// Describe renders the registry as an aligned text listing (one
// solver per line: id, theorem, classes, guarantee) — the source of
// cmd/suu-sim -list, generated so the CLI's algorithm list cannot
// drift from the registry.
func Describe() string {
	var b strings.Builder
	w := 0
	for _, s := range ordered {
		if len(s.ID) > w {
			w = len(s.ID)
		}
	}
	fmt.Fprintf(&b, "%-*s  %-9s %-28s %s\n", w, "id", "theorem", "classes", "guarantee")
	for _, s := range ordered {
		th := s.Theorem
		if th == "" {
			th = "—"
		}
		fmt.Fprintf(&b, "%-*s  %-9s %-28s %s\n", w, s.ID, th, s.ClassNames(), s.Guarantee)
		if len(s.Aliases) > 0 {
			al := append([]string(nil), s.Aliases...)
			sort.Strings(al)
			fmt.Fprintf(&b, "%-*s  (alias: %s)\n", w, "", strings.Join(al, ", "))
		}
	}
	return b.String()
}
