package solve

import (
	"fmt"
	"math/rand"

	"suu/internal/core"
	"suu/internal/dag"
	"suu/internal/model"
	"suu/internal/opt"
	"suu/internal/sched"
)

// The registrations below are the single catalogue of constructions.
// Ranks order Auto dispatch (lower = stronger): the LP-based
// independent-jobs schedule beats the chains pipeline on independent
// instances, the chains pipeline owns the chains class, and the
// forest pipeline is the universal fallback.

func init() {
	Register(Solver{
		ID:             "lp-oblivious",
		Theorem:        "Thm 4.5",
		Guarantee:      "O(log n · log min(n,m))",
		Classes:        []dag.Class{dag.ClassIndependent},
		Oblivious:      true,
		Parallelizable: true,
		Rank:           10,
		Build:          buildLPOblivious,
	})
	Register(Solver{
		ID:             "chains",
		Theorem:        "Thm 4.4",
		Guarantee:      "O(log m · log n · log(n+m)/loglog(n+m))",
		Classes:        []dag.Class{dag.ClassIndependent, dag.ClassChains},
		Oblivious:      true,
		Parallelizable: true,
		Rank:           20,
		Build:          buildChains,
	})
	Register(Solver{
		ID:             "forest",
		Theorem:        "Thm 4.7/4.8",
		Guarantee:      "O(log m · log² n) trees; ·log(n+m)/loglog(n+m) mixed; fallback outside the paper's classes",
		Classes:        nil, // level-decomposition fallback handles any dag
		Oblivious:      true,
		Parallelizable: true,
		Rank:           90,
		Build:          buildForest,
	})
	Register(Solver{
		ID:             "comb-oblivious",
		Theorem:        "Thm 3.6",
		Guarantee:      "O(log² n) for independent jobs",
		Classes:        []dag.Class{dag.ClassIndependent},
		Oblivious:      true,
		Parallelizable: true,
		Rank:           30,
		Build:          buildCombOblivious,
	})
	Register(Solver{
		ID:             "adaptive",
		Theorem:        "Thm 3.3",
		Guarantee:      "O(log n) for independent jobs",
		Classes:        nil, // greedy MSM is feasible (heuristic) on any dag
		Parallelizable: true,
		// MSM-ALG is a pure function of the eligible set, so the engine
		// memoizes its assignment per unfinished-set key.
		Compilable: true,
		Build:      buildAdaptive,
	})
	Register(Solver{
		ID:        "learning",
		Guarantee: "none (beyond the paper; Beta-Bernoulli posterior + MSM greedy)",
		Classes:   nil,
		// The learner observes outcomes (sched.OutcomeObserver), so its
		// repetitions must run sequentially — and its assignments depend
		// on that observation history, so it is NOT compilable: a frozen
		// posterior snapshot (LearningPolicy.Frozen) is the stationary,
		// compilable form for evaluating a trained learner.
		Parallelizable: false,
		Compilable:     false,
		Build:          buildLearning,
	})
	Register(Solver{
		ID:             "optimal",
		Theorem:        "Malewicz DP",
		Guarantee:      "exact (layered value iteration; structured dags to n≈20)",
		Classes:        nil,
		Parallelizable: true,
		// The optimal policy is a regimen — stationary by definition.
		Compilable: true,
		Build:      buildOptimal,
	})
	Register(Solver{
		ID:             "greedy-maxp",
		Aliases:        []string{"greedy"},
		Guarantee:      "none (baseline)",
		Baseline:       true,
		Parallelizable: true,
		Compilable:     true,
		Build: func(in *model.Instance, par core.Params) (*Result, error) {
			return baselineResult("greedy-maxp", &core.GreedyMaxPPolicy{In: in}), nil
		},
	})
	Register(Solver{
		ID:        "round-robin",
		Guarantee: "none (baseline)",
		Baseline:  true,
		// Rotates with the step counter: parallel-safe but not
		// stationary, so never compiled.
		Parallelizable: true,
		Build: func(in *model.Instance, par core.Params) (*Result, error) {
			return baselineResult("round-robin", &core.RoundRobinPolicy{In: in}), nil
		},
	})
	Register(Solver{
		ID:             "all-on-one",
		Guarantee:      "none (baseline)",
		Baseline:       true,
		Parallelizable: true,
		Compilable:     true,
		Build: func(in *model.Instance, par core.Params) (*Result, error) {
			return baselineResult("all-on-one", &core.AllOnOnePolicy{In: in}), nil
		},
	})
	Register(Solver{
		ID:        "random",
		Guarantee: "none (baseline)",
		Baseline:  true,
		// The shared *rand.Rand is not safe for concurrent repetitions.
		Parallelizable: false,
		Build: func(in *model.Instance, par core.Params) (*Result, error) {
			p := &core.RandomPolicy{In: in, Rng: rand.New(rand.NewSource(par.Seed))}
			return baselineResult("random", p), nil
		},
	})
}

func buildLPOblivious(in *model.Instance, par core.Params) (*Result, error) {
	res, err := core.SUUIndependentLP(in, par)
	if err != nil {
		return nil, err
	}
	return &Result{
		Policy:     res.Schedule,
		Kind:       "oblivious-lp (Thm 4.5)",
		Guarantee:  "O(log n · log min(n,m))",
		PrefixLen:  res.Schedule.Len(),
		CoreLength: res.CoreLength,
		LPValue:    res.TStar,
		LowerBound: res.LowerBound,
		MaxLoad:    res.MaxLoad,
		Congestion: res.Congestion,
		LPPivots:   res.LPPivots,
		LPRows:     res.LPRows,
		LPCols:     res.LPCols,
		LPNnz:      res.LPNnz,
		LPBasis:    res.LPBasis,
		Detail:     fmt.Sprintf("LP oblivious (T*=%.2f, lower bound %.2f)", res.TStar, res.LowerBound),
	}, nil
}

func buildChains(in *model.Instance, par core.Params) (*Result, error) {
	res, err := core.SUUChains(in, par)
	if err != nil {
		return nil, err
	}
	return &Result{
		Policy:     res.Schedule,
		Kind:       "chains (Thm 4.4)",
		Guarantee:  "O(log m · log n · log(n+m)/loglog(n+m))",
		PrefixLen:  res.Schedule.Len(),
		CoreLength: res.CoreLength,
		LPValue:    res.TStar,
		LowerBound: res.LowerBound,
		MaxLoad:    res.MaxLoad,
		Congestion: res.Congestion,
		LPPivots:   res.LPPivots,
		LPRows:     res.LPRows,
		LPCols:     res.LPCols,
		LPNnz:      res.LPNnz,
		Detail:     fmt.Sprintf("chains pipeline (T*=%.2f, Πmax=%d, congestion=%d)", res.TStar, res.MaxLoad, res.Congestion),
	}, nil
}

// forestKind maps the instance's class to the paper result the forest
// pipeline instantiates on it, mirroring the pre-registry dispatch of
// suu.Solve. On independent/chains inputs the decomposition
// degenerates to a single chains block, i.e. the Theorem 4.4
// machinery.
func forestKind(c dag.Class) (kind, guarantee string) {
	switch c {
	case dag.ClassIndependent, dag.ClassChains:
		return "forest (single chains block)", "O(log m · log n · log(n+m)/loglog(n+m))"
	case dag.ClassOutForest, dag.ClassInForest:
		return "trees (Thm 4.8)", "O(log m · log² n)"
	case dag.ClassMixedForest:
		return "forest (Thm 4.7)", "O(log m · log² n · log(n+m)/loglog(n+m))"
	default:
		return "level-fallback", "O(depth · chains-factor); outside the paper's classes"
	}
}

func buildForest(in *model.Instance, par core.Params) (*Result, error) {
	res, err := core.SUUForest(in, par)
	if err != nil {
		return nil, err
	}
	kind, guarantee := forestKind(in.Prec.Classify())
	return &Result{
		Policy:     res.Schedule,
		Kind:       kind,
		Guarantee:  guarantee,
		PrefixLen:  res.Schedule.Len(),
		CoreLength: res.CoreLength,
		LowerBound: res.LowerBound,
		Blocks:     res.Decomposition.Width(),
		Decomp:     res.Decomposition.Method,
		LPPivots:   res.LPPivots,
		LPRows:     res.LPRows,
		LPCols:     res.LPCols,
		LPNnz:      res.LPNnz,
		Detail: fmt.Sprintf("forest pipeline (%s decomposition, %d blocks, lower bound %.2f)",
			res.Decomposition.Method, res.Decomposition.Width(), res.LowerBound),
	}, nil
}

func buildCombOblivious(in *model.Instance, par core.Params) (*Result, error) {
	res, err := core.SUUIOblivious(in, par)
	if err != nil {
		return nil, err
	}
	return &Result{
		Policy:     res.Schedule,
		Kind:       "oblivious-combinatorial (Thm 3.6)",
		Guarantee:  "O(log² n) for independent jobs",
		PrefixLen:  res.Schedule.Len(),
		CoreLength: res.CoreLength,
		Detail: fmt.Sprintf("SUU-I-OBL (t=%d, rounds=%d, core %d steps)",
			res.TGuess, res.Rounds, res.CoreLength),
	}, nil
}

func buildAdaptive(in *model.Instance, par core.Params) (*Result, error) {
	return &Result{
		Policy:    &core.AdaptivePolicy{In: in},
		Kind:      "adaptive (Thm 3.3)",
		Guarantee: "O(log n) for independent jobs",
		Adaptive:  true,
		Detail:    "adaptive SUU-I-ALG",
	}, nil
}

func buildLearning(in *model.Instance, par core.Params) (*Result, error) {
	return &Result{
		Policy:    core.NewLearningPolicy(in, par.Optimism),
		Kind:      "learning (§5 online extension)",
		Guarantee: "none (beyond the paper; Beta-Bernoulli posterior + MSM greedy)",
		Adaptive:  true,
		Detail:    fmt.Sprintf("online learner (§5 extension, optimism %.1f)", par.Optimism),
	}, nil
}

func buildOptimal(in *model.Instance, par core.Params) (*Result, error) {
	reg, topt, st, err := opt.OptimalRegimenParallel(in, 0)
	if err != nil {
		return nil, err
	}
	return &Result{
		Policy:           reg,
		Kind:             "optimal-regimen (layered value iteration)",
		Guarantee:        "exact",
		Adaptive:         true,
		ExactValue:       topt,
		ExactStates:      st.States,
		ExactTransitions: st.Transitions,
		Exact:            st,
		Detail: fmt.Sprintf("optimal regimen (exact E[makespan]=%.4f, %d closed states, %d transitions, %d closed-form)",
			topt, st.States, st.Transitions, st.ClosedForm),
	}, nil
}

func baselineResult(kind string, p sched.Policy) *Result {
	return &Result{
		Policy:    p,
		Kind:      kind,
		Guarantee: "none (baseline)",
		Adaptive:  true,
		Detail:    "baseline " + kind,
	}
}
