package solve

import (
	"strings"
	"testing"

	"suu/internal/core"
	"suu/internal/dag"
	"suu/internal/sched"
	"suu/internal/sim"
	"suu/internal/workload"
)

func par(seed int64) core.Params {
	p := core.DefaultParams()
	p.Seed = seed
	return p
}

func TestRegistryCatalogue(t *testing.T) {
	want := []string{
		"lp-oblivious", "chains", "forest", "comb-oblivious",
		"adaptive", "learning", "optimal",
		"greedy-maxp", "round-robin", "all-on-one", "random",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d solvers %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("IDs()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if _, ok := Get("greedy"); !ok {
		t.Error("alias greedy not resolvable")
	}
	if _, ok := Get("nope"); ok {
		t.Error("unknown id resolved")
	}
	if s, _ := Get("learning"); s.Parallelizable {
		t.Error("learning must be marked non-parallelizable (outcome observer)")
	}
	if s, _ := Get("random"); s.Parallelizable {
		t.Error("random must be marked non-parallelizable (shared rng)")
	}
}

// TestParallelizableConsistentWithEngine pins the registry metadata to
// the engine's runtime check: a solver marked parallelizable must
// build policies sim.Parallelizable accepts. (The converse is allowed
// — "random" is stricter than the runtime check because its shared
// *rand.Rand is a hazard OutcomeObserver detection cannot see.)
func TestParallelizableConsistentWithEngine(t *testing.T) {
	small := workload.Independent(workload.Config{Jobs: 4, Machines: 2, Seed: 3})
	for _, s := range All() {
		in := small
		if !s.AppliesTo(dag.ClassIndependent) {
			in = workload.Chains(workload.Config{Jobs: 6, Machines: 2, Seed: 3}, 2)
		}
		res, err := s.Build(in, par(5))
		if err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		if s.Parallelizable && !sim.Parallelizable(res.Policy) {
			t.Errorf("%s: registry says parallelizable but the engine would serialize it", s.ID)
		}
	}
}

// TestCompilableConsistentWithPolicyInterfaces pins the Compilable
// flag to the built policy's actual interface set: Compilable solvers
// must build sched.Memoizable policies (so the compiled adaptive
// engine accepts them), non-Compilable solvers must not — a solver
// that silently gains or loses stationarity must update its metadata,
// not drift.
func TestCompilableConsistentWithPolicyInterfaces(t *testing.T) {
	small := workload.Independent(workload.Config{Jobs: 4, Machines: 2, Seed: 3})
	for _, s := range All() {
		in := small
		if !s.AppliesTo(dag.ClassIndependent) {
			in = workload.Chains(workload.Config{Jobs: 6, Machines: 2, Seed: 3}, 2)
		}
		res, err := s.Build(in, par(5))
		if err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		_, memoizable := res.Policy.(sched.Memoizable)
		if memoizable != s.Compilable {
			t.Errorf("%s: Compilable=%v but built policy memoizable=%v", s.ID, s.Compilable, memoizable)
		}
		if s.Compilable && !s.Parallelizable {
			t.Errorf("%s: compilable policies are immutable tables and must be parallelizable", s.ID)
		}
	}
	// The adaptive and learning entries are the tentpole's showcase:
	// the MSM greedy compiles, the live learner never does.
	if s, _ := Get("adaptive"); !s.Compilable {
		t.Error("adaptive must advertise compilability")
	}
	if s, _ := Get("learning"); s.Compilable {
		t.Error("learning observes outcomes and must not advertise compilability")
	}
}

func TestStrongestMatchesPaperDispatch(t *testing.T) {
	cases := []struct {
		class dag.Class
		want  string
	}{
		{dag.ClassIndependent, "lp-oblivious"},
		{dag.ClassChains, "chains"},
		{dag.ClassOutForest, "forest"},
		{dag.ClassInForest, "forest"},
		{dag.ClassMixedForest, "forest"},
		{dag.ClassGeneral, "forest"},
	}
	for _, tc := range cases {
		s, err := Strongest(tc.class)
		if err != nil {
			t.Fatalf("%s: %v", tc.class, err)
		}
		if s.ID != tc.want {
			t.Errorf("Strongest(%s) = %s, want %s", tc.class, s.ID, tc.want)
		}
	}
}

func TestEverySolverBuildsOnItsClasses(t *testing.T) {
	small := workload.Independent(workload.Config{Jobs: 4, Machines: 2, Seed: 3})
	chains := workload.Chains(workload.Config{Jobs: 6, Machines: 2, Seed: 3}, 2)
	tree := workload.OutTree(workload.Config{Jobs: 6, Machines: 2, Seed: 3})
	for _, s := range All() {
		in := small
		if !s.AppliesTo(dag.ClassIndependent) {
			in = chains
		}
		if s.ID == "forest" {
			in = tree
		}
		res, err := s.Build(in, par(5))
		if err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		if res.Policy == nil || res.Kind == "" || res.Guarantee == "" {
			t.Fatalf("%s: incomplete result %+v", s.ID, res)
		}
		if s.Oblivious && res.Adaptive {
			t.Errorf("%s: oblivious solver produced adaptive result", s.ID)
		}
		// Every built policy must finish a small instance.
		sum, incomplete := sim.Estimate(in, res.Policy, 30, 200000, 7)
		if incomplete != 0 {
			t.Errorf("%s: %d incomplete runs", s.ID, incomplete)
		}
		if sum.Mean < 1 {
			t.Errorf("%s: mean makespan %v < 1", s.ID, sum.Mean)
		}
	}
}

func TestAutoBuildsStrongest(t *testing.T) {
	in := workload.Chains(workload.Config{Jobs: 6, Machines: 2, Seed: 11}, 2)
	s, res, err := Auto(in, par(11))
	if err != nil {
		t.Fatal(err)
	}
	if s.ID != "chains" {
		t.Errorf("auto picked %s for chains class", s.ID)
	}
	if res.Kind != "chains (Thm 4.4)" {
		t.Errorf("kind = %q", res.Kind)
	}
	if res.LowerBound <= 0 || res.PrefixLen <= 0 {
		t.Errorf("missing diagnostics: %+v", res)
	}
}

func TestForestKindTracksClass(t *testing.T) {
	tree := workload.OutTree(workload.Config{Jobs: 6, Machines: 2, Seed: 3})
	s, _ := Get("forest")
	res, err := s.Build(tree, par(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "trees (Thm 4.8)" {
		t.Errorf("kind = %q on an out-tree", res.Kind)
	}
	if res.Blocks <= 0 || res.Decomp == "" {
		t.Errorf("decomposition diagnostics missing: %+v", res)
	}
	layered := workload.Layered(workload.Config{Jobs: 8, Machines: 3, Seed: 4}, 3, 0.5)
	if layered.Prec.Classify() == dag.ClassGeneral {
		res, err = s.Build(layered, par(4))
		if err != nil {
			t.Fatal(err)
		}
		if res.Kind != "level-fallback" {
			t.Errorf("kind = %q on a general dag", res.Kind)
		}
	}
}

func TestDescribeListsEverySolver(t *testing.T) {
	text := Describe()
	for _, id := range IDs() {
		if !strings.Contains(text, id) {
			t.Errorf("Describe() missing %s", id)
		}
	}
	if !strings.Contains(text, "greedy") {
		t.Error("Describe() missing alias note")
	}
	if !strings.Contains(text, "Thm 4.4") {
		t.Error("Describe() missing theorem column")
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	Register(Solver{ID: "chains", Build: buildChains})
}
