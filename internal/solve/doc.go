// Package solve is the solver registry: every schedule construction
// in the repository — the paper's approximation algorithms, the exact
// dynamic program, the online learner, and the naive baselines — is
// registered here under a stable id together with its metadata (the
// theorem it implements, the guarantee it certifies, the precedence
// classes it applies to, oblivious vs adaptive, and whether simulated
// repetitions of the built policy may fan out across goroutines).
//
// Every consumer dispatches through the registry: the public suu API
// (suu.Solve picks the strongest applicable construction via Auto),
// cmd/suu-sim's -alg flag, cmd/suu-bench's per-solver construction
// benchmarks, and the experiment grid in internal/exp. Registering a
// construction here makes it reachable from all of them at once;
// there is deliberately no other per-layer solver switch to keep in
// sync.
//
// A Build returns a Result: the policy itself plus everything a
// caller may want to reuse or report — the LP objective and lower
// bound when an LP ran, the exported simplex basis (LPBasis) that a
// later solve of the same instance can warm-start from, and the
// exact solver's search counters (Exact) that suu-sim -stats and the
// benchmark harness surface.
package solve
