// Package stats provides the small statistical toolkit used by the
// simulator, the experiment harness, and the serving layer: summaries
// with confidence intervals, ratio helpers, deterministic quantiles,
// and streaming estimators.
//
// The pieces and their contracts:
//
//   - Summary carries N, Mean, StdDev, Min, Max and HalfWidth95 (the
//     95% normal-approximation confidence half-width); it is the one
//     makespan-estimate shape every estimator returns.
//   - Accumulator is a mergeable streaming moment accumulator: the
//     parallel estimators aggregate repetitions into fixed-size
//     chunks and merge the chunks in order, which is what makes
//     simulation summaries bit-identical at every concurrency.
//   - Quantile sorts a copy and interpolates — deterministic,
//     O(n log n), for offline samples like bench latency lists.
//   - P2Quantile is the P² streaming quantile estimator: O(1) memory
//     per tracked quantile, no sample retention, used by the serve
//     layer's per-endpoint latency metrics where holding every
//     observation would be an unbounded buffer. Its estimates are
//     approximate (markers maintained by parabolic interpolation),
//     so it is for monitoring, not for pinned tests.
package stats
