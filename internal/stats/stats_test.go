package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Errorf("summary=%+v", s)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.StdDev-want) > 1e-12 {
		t.Errorf("stddev=%v, want %v", s.StdDev, want)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s := Summarize([]float64{7})
	if s.StdDev != 0 || s.HalfWidth95 != 0 || s.Mean != 7 {
		t.Errorf("summary=%+v", s)
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on empty sample")
		}
	}()
	Summarize(nil)
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("q0=%v", q)
	}
	if q := Quantile(xs, 1); q != 4 {
		t.Errorf("q1=%v", q)
	}
	if q := Quantile(xs, 0.5); q != 2.5 {
		t.Errorf("median=%v, want 2.5", q)
	}
	// Input must not be reordered.
	if xs[0] != 4 {
		t.Error("Quantile mutated input")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Error("ratio wrong")
	}
	if !math.IsInf(Ratio(1, 0), 1) {
		t.Error("x/0 not +Inf")
	}
	if !math.IsNaN(Ratio(0, 0)) {
		t.Error("0/0 not NaN")
	}
}

func TestLog2Clamp(t *testing.T) {
	if Log2(0.5) != 0 || Log2(1) != 0 {
		t.Error("clamp failed")
	}
	if math.Abs(Log2(8)-3) > 1e-12 {
		t.Error("log2(8) != 3")
	}
}

func TestQuantileBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for q out of range")
		}
	}()
	Quantile([]float64{1}, 1.5)
}

// Property: min <= mean <= max, and the quantile function is monotone.
func TestSummaryProperties(t *testing.T) {
	prop := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e9 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		if s.Min > s.Mean+1e-9 || s.Mean > s.Max+1e-9 {
			return false
		}
		return Quantile(xs, 0.25) <= Quantile(xs, 0.75)+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
