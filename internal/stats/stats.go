package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of real observations.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
	// HalfWidth95 is the half-width of an approximate 95% confidence
	// interval on the mean (normal approximation, 1.96·σ/√n).
	HalfWidth95 float64
}

// Summarize computes a Summary of xs. Panics on an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
		s.HalfWidth95 = 1.96 * s.StdDev / math.Sqrt(float64(s.N))
	}
	return s
}

// String renders "mean ± hw [min,max]".
func (s Summary) String() string {
	return fmt.Sprintf("%.3f ± %.3f [%.3f, %.3f] (n=%d)", s.Mean, s.HalfWidth95, s.Min, s.Max, s.N)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation on the sorted sample. Panics on an empty sample.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	if q < 0 || q > 1 {
		panic("stats: quantile out of [0,1]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Ratio returns a/b, guarding against division by ~zero (returns +Inf
// with b==0 and a>0, NaN when both vanish).
func Ratio(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return math.NaN()
		}
		return math.Inf(1)
	}
	return a / b
}

// Log2 returns log₂(max(x,1)) — the convention used when reporting
// polylog shapes (log of tiny instance sizes clamps to 0).
func Log2(x float64) float64 {
	if x <= 1 {
		return 0
	}
	return math.Log2(x)
}

// Mean is a convenience for Summarize(xs).Mean.
func Mean(xs []float64) float64 { return Summarize(xs).Mean }
