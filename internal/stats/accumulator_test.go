package stats

import (
	"math"
	"math/rand"
	"testing"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAccumulatorMatchesSummarize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 10000)
	var acc Accumulator
	for i := range xs {
		xs[i] = 100 + 50*rng.NormFloat64()
		acc.Add(xs[i])
	}
	want := Summarize(xs)
	got := acc.Summary()
	if got.N != want.N || got.Min != want.Min || got.Max != want.Max {
		t.Fatalf("got %+v want %+v", got, want)
	}
	if !almostEq(got.Mean, want.Mean, 1e-9) {
		t.Errorf("mean %v vs %v", got.Mean, want.Mean)
	}
	if !almostEq(got.StdDev, want.StdDev, 1e-7) {
		t.Errorf("stddev %v vs %v", got.StdDev, want.StdDev)
	}
	if !almostEq(got.HalfWidth95, want.HalfWidth95, 1e-7) {
		t.Errorf("hw95 %v vs %v", got.HalfWidth95, want.HalfWidth95)
	}
}

func TestAccumulatorMergeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = rng.ExpFloat64()
	}
	// Chunked accumulation merged in order must not depend on how many
	// chunks each "worker" handled — only on the chunk boundaries.
	merge := func(chunk int) Summary {
		var accs []Accumulator
		for lo := 0; lo < len(xs); lo += chunk {
			hi := lo + chunk
			if hi > len(xs) {
				hi = len(xs)
			}
			var a Accumulator
			for _, x := range xs[lo:hi] {
				a.Add(x)
			}
			accs = append(accs, a)
		}
		var total Accumulator
		for _, a := range accs {
			total.Merge(a)
		}
		return total.Summary()
	}
	a, b := merge(256), merge(256)
	if a != b {
		t.Fatalf("same chunking, different summaries: %+v vs %+v", a, b)
	}
	// And any chunking agrees with the exact two-pass answer within
	// floating-point noise.
	want := Summarize(xs)
	for _, chunk := range []int{64, 256, 1024, len(xs)} {
		got := merge(chunk)
		if got.N != want.N || got.Min != want.Min || got.Max != want.Max ||
			!almostEq(got.Mean, want.Mean, 1e-12) || !almostEq(got.StdDev, want.StdDev, 1e-9) {
			t.Errorf("chunk %d: %+v vs %+v", chunk, got, want)
		}
	}
}

func TestAccumulatorSingleAndEmpty(t *testing.T) {
	var a Accumulator
	a.Add(7)
	s := a.Summary()
	if s.N != 1 || s.Mean != 7 || s.Min != 7 || s.Max != 7 || s.StdDev != 0 {
		t.Fatalf("%+v", s)
	}
	var empty Accumulator
	defer func() {
		if recover() == nil {
			t.Error("no panic on empty accumulator")
		}
	}()
	empty.Summary()
}

func TestP2QuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, q := range []float64{0.5, 0.9, 0.99} {
		est := NewP2Quantile(q)
		xs := make([]float64, 50000)
		for i := range xs {
			xs[i] = 1000 + 200*rng.NormFloat64()
			est.Add(xs[i])
		}
		exact := Quantile(xs, q)
		if math.Abs(est.Value()-exact) > 10 { // 5% of one stddev
			t.Errorf("q=%v: P² %v vs exact %v", q, est.Value(), exact)
		}
	}
}

func TestP2QuantileSmallSamples(t *testing.T) {
	est := NewP2Quantile(0.5)
	for _, x := range []float64{3, 1, 2} {
		est.Add(x)
	}
	if est.Value() != 2 {
		t.Errorf("median of {1,2,3} = %v", est.Value())
	}
	if est.N() != 3 {
		t.Errorf("n=%d", est.N())
	}
}
