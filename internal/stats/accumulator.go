package stats

import "math"

// Accumulator aggregates a sample in one pass with O(1) memory using
// Welford's algorithm for the mean and variance. Accumulators over
// disjoint sub-samples merge exactly (Chan et al.), so the simulator
// can aggregate per-chunk and combine in a fixed order, making the
// merged result independent of how chunks were scheduled across
// workers. The zero value is ready to use.
type Accumulator struct {
	n    int64
	mean float64
	m2   float64 // sum of squared deviations from the running mean
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.mean, a.min, a.max = x, x, x
		a.m2 = 0
		return
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
	if x < a.min {
		a.min = x
	}
	if x > a.max {
		a.max = x
	}
}

// Merge folds accumulator b into a, as if every observation of b had
// been Added to a (up to the usual floating-point reassociation).
// Merging the same sequence of accumulators in the same order is
// bit-for-bit deterministic.
func (a *Accumulator) Merge(b Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = b
		return
	}
	n := a.n + b.n
	d := b.mean - a.mean
	a.mean += d * float64(b.n) / float64(n)
	a.m2 += b.m2 + d*d*float64(a.n)*float64(b.n)/float64(n)
	a.n = n
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
}

// N returns the number of observations folded in so far.
func (a *Accumulator) N() int { return int(a.n) }

// Summary converts the accumulated moments into the same Summary that
// Summarize would produce on the materialized sample (up to
// floating-point rounding). Panics on an empty accumulator, matching
// Summarize on an empty slice.
func (a *Accumulator) Summary() Summary {
	if a.n == 0 {
		panic("stats: empty sample")
	}
	s := Summary{N: int(a.n), Mean: a.mean, Min: a.min, Max: a.max}
	if a.n > 1 {
		s.StdDev = math.Sqrt(a.m2 / float64(a.n-1))
		s.HalfWidth95 = 1.96 * s.StdDev / math.Sqrt(float64(a.n))
	}
	return s
}

// P2Quantile estimates a single quantile of a stream in O(1) memory
// with the P² algorithm (Jain & Chlamtac 1985): five markers tracking
// the minimum, the target quantile, the two midpoints and the maximum,
// adjusted by piecewise-parabolic interpolation as observations
// arrive. Accuracy is typically well under a percent of the spread for
// the unimodal makespan distributions the simulator produces; use
// stats.Quantile on a materialized sample when exactness matters.
type P2Quantile struct {
	q       float64
	n       int
	heights [5]float64
	pos     [5]float64 // actual marker positions (1-based)
	want    [5]float64 // desired marker positions
	inc     [5]float64 // desired position increments per observation
}

// NewP2Quantile returns an estimator for the q-quantile, 0 < q < 1.
func NewP2Quantile(q float64) *P2Quantile {
	if q <= 0 || q >= 1 {
		panic("stats: P² quantile must be in (0,1)")
	}
	p := &P2Quantile{q: q}
	p.pos = [5]float64{1, 2, 3, 4, 5}
	p.want = [5]float64{1, 1 + 2*q, 1 + 4*q, 3 + 2*q, 5}
	p.inc = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return p
}

// Add folds one observation into the estimator.
func (p *P2Quantile) Add(x float64) {
	if p.n < 5 {
		p.heights[p.n] = x
		p.n++
		if p.n == 5 {
			// Insertion sort of the first five observations.
			h := p.heights[:]
			for i := 1; i < 5; i++ {
				for k := i; k > 0 && h[k-1] > h[k]; k-- {
					h[k-1], h[k] = h[k], h[k-1]
				}
			}
		}
		return
	}
	p.n++
	// Locate the cell containing x and bump extreme markers.
	var cell int
	switch {
	case x < p.heights[0]:
		p.heights[0] = x
		cell = 0
	case x >= p.heights[4]:
		p.heights[4] = x
		cell = 3
	default:
		for cell = 0; cell < 3; cell++ {
			if x < p.heights[cell+1] {
				break
			}
		}
	}
	for i := cell + 1; i < 5; i++ {
		p.pos[i]++
	}
	for i := range p.want {
		p.want[i] += p.inc[i]
	}
	// Adjust interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := p.want[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1
			}
			h := p.parabolic(i, s)
			if p.heights[i-1] < h && h < p.heights[i+1] {
				p.heights[i] = h
			} else {
				p.heights[i] = p.linear(i, s)
			}
			p.pos[i] += s
		}
	}
}

func (p *P2Quantile) parabolic(i int, s float64) float64 {
	q, n := p.heights, p.pos
	return q[i] + s/(n[i+1]-n[i-1])*((n[i]-n[i-1]+s)*(q[i+1]-q[i])/(n[i+1]-n[i])+
		(n[i+1]-n[i]-s)*(q[i]-q[i-1])/(n[i]-n[i-1]))
}

func (p *P2Quantile) linear(i int, s float64) float64 {
	return p.heights[i] + s*(p.heights[i+int(s)]-p.heights[i])/(p.pos[i+int(s)]-p.pos[i])
}

// N returns the number of observations folded in so far.
func (p *P2Quantile) N() int { return p.n }

// Value returns the current quantile estimate. With fewer than five
// observations it falls back to the exact quantile of the buffer.
func (p *P2Quantile) Value() float64 {
	if p.n == 0 {
		panic("stats: empty sample")
	}
	if p.n < 5 {
		buf := append([]float64(nil), p.heights[:p.n]...)
		return Quantile(buf, p.q)
	}
	return p.heights[2]
}
