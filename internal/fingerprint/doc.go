// Package fingerprint is the one way this repository names content:
// a SHA-256 over a canonical JSON encoding, truncated to a fixed hex
// width. It grew out of internal/exp's shard machinery — the sweep
// fingerprint that decides whether two shard envelopes were cut from
// the same (config, plan) pair, and the payload checksum that detects
// corruption in transit — and is now shared with internal/serve,
// which keys cached solve results, compiled simulation engines, and
// LP warm-start bases by instance fingerprint.
//
// The contract callers rely on:
//
//   - Deterministic: the same Go value always hashes to the same
//     string (encoding/json is deterministic for the plain-data
//     structs used as fingerprint documents — struct fields in
//     declaration order, map keys sorted).
//   - Canonical inputs are the caller's job: anything that should NOT
//     change the fingerprint (worker counts, wall-clock, edge
//     insertion order) must be excluded or normalized before hashing.
//     exp excludes Workers; serve sorts precedence edges.
//   - Truncation widths are part of the on-disk format: exp's sweep
//     fingerprints are 8 bytes (16 hex chars) and payload checksums
//     16 bytes (32 hex chars), and persisted envelopes hold both, so
//     the widths here can never change without a shard schema bump.
package fingerprint
