package fingerprint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
)

// JSON hashes doc's JSON encoding and returns the first n bytes of
// the SHA-256 sum as lowercase hex (2n characters). doc must be plain
// data — a marshal failure is a programming error and panics, exactly
// as the exp fingerprint always has.
func JSON(doc any, n int) string {
	b, err := json.Marshal(doc)
	if err != nil {
		panic("fingerprint: marshal: " + err.Error())
	}
	return Bytes(b, n)
}

// Bytes hashes raw bytes and returns the first n bytes of the
// SHA-256 sum as lowercase hex.
func Bytes(b []byte, n int) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:n])
}
