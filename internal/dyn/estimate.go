package dyn

import (
	"errors"
	"runtime"

	"suu/internal/sched"
	"suu/internal/sim"
	"suu/internal/stats"
)

// Strategy produces per-worker walkers for one scenario. Strategies
// are bound to their scenario at construction (NewStatic, NewAdaptive,
// NewRolling); the estimator gives every worker its own walker, so a
// walker never needs internal locking.
type Strategy interface {
	// Name labels the strategy in tables and BENCH records.
	Name() string
	// NewWalker returns a fresh walker for one worker goroutine.
	NewWalker() Walker
	// StaticPolicy returns a static policy that reproduces the
	// strategy on a scenario with no events, and whether one exists.
	// The estimator delegates event-free scenarios through it to the
	// static engines (compiled, lane and splice paths included), which
	// is what pins the zero-event scenario bit-identical to the static
	// pipeline.
	StaticPolicy() (sched.Policy, bool)
	// parallelizable reports whether walkers may run on concurrent
	// workers (false when they share state the runtime cannot see,
	// e.g. a static wrapper around an outcome-observing policy).
	parallelizable() bool
}

// estimateChunk mirrors sim's chunk size: repetitions aggregate into
// per-chunk accumulators that merge in index order, so summaries are
// bit-identical at any worker count.
const estimateChunk = 256

// regimeLabel derives the regime stream's seed domain from the
// simulation seed; completion draws and regime transitions never
// share a stream.
const regimeLabel = "regime"

// Estimate runs reps trajectories of strat on sc sequentially. See
// EstimateInfo for the full form.
func Estimate(sc *Scenario, strat Strategy, reps, maxSteps int, seed int64) (stats.Summary, int, error) {
	sum, inc, _, err := EstimateInfo(sc, strat, reps, maxSteps, seed, 1)
	return sum, inc, err
}

// EstimateInfo runs reps trajectories of strat on sc across workers
// goroutines (<= 0 selects GOMAXPROCS) and returns the makespan
// summary, the number of trajectories that hit the step cap, and the
// engine record. Repetition r draws completions from stream (seed, r)
// and regime transitions from (SeedFor(seed, "regime"), r); chunks of
// estimateChunk repetitions merge in index order — bit-identical at
// any worker count. Scenarios with no events delegate to the static
// engines via Strategy.StaticPolicy.
func EstimateInfo(sc *Scenario, strat Strategy, reps, maxSteps int, seed int64, workers int) (stats.Summary, int, sim.EngineUsed, error) {
	if reps <= 0 {
		return stats.Summary{}, 0, sim.EngineUsed{}, errors.New("dyn: reps must be positive")
	}
	tl, err := sc.compile()
	if err != nil {
		return stats.Summary{}, 0, sim.EngineUsed{}, err
	}
	if sc.Static() {
		if pol, ok := strat.StaticPolicy(); ok {
			sum, inc, eng := sim.EstimateParallelInfo(sc.In, pol, reps, maxSteps, seed, workers)
			return sum, inc, eng, nil
		}
	}
	if !strat.parallelizable() || workers == 1 {
		workers = 1
	} else if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Resolve the flat probability backing on this goroutine before
	// workers read it concurrently.
	sc.In.Flat()
	regSeed := sim.SeedFor(seed, regimeLabel)
	nchunks := (reps + estimateChunk - 1) / estimateChunk
	if workers > nchunks {
		workers = nchunks
	}
	accs := make([]stats.Accumulator, nchunks)
	incs := make([]int, nchunks)
	newChunkLoop := func() func(c int) {
		ws := newWalkState(sc.In, tl)
		w := strat.NewWalker()
		var rng, reg sim.Stream
		return func(c int) {
			lo, hi := c*estimateChunk, (c+1)*estimateChunk
			if hi > reps {
				hi = reps
			}
			acc := &accs[c]
			for r := lo; r < hi; r++ {
				rng.Reseed(seed, int64(r))
				reg.Reseed(regSeed, int64(r))
				makespan, completed := ws.run(w, maxSteps, &rng, &reg)
				acc.Add(float64(makespan))
				if !completed {
					incs[c]++
				}
			}
		}
	}
	if workers <= 1 {
		workers = 1
		runChunk := newChunkLoop()
		for c := 0; c < nchunks; c++ {
			runChunk(c)
		}
	} else {
		next := make(chan int)
		done := make(chan struct{})
		for g := 0; g < workers; g++ {
			go func() {
				defer func() { done <- struct{}{} }()
				runChunk := newChunkLoop()
				for c := range next {
					runChunk(c)
				}
			}()
		}
		for c := 0; c < nchunks; c++ {
			next <- c
		}
		close(next)
		for g := 0; g < workers; g++ {
			<-done
		}
	}
	var total stats.Accumulator
	incomplete := 0
	for c := range accs {
		total.Merge(accs[c])
		incomplete += incs[c]
	}
	eng := sim.EngineUsed{Engine: sim.EngineDynamic, Workers: workers}
	return total.Summary(), incomplete, eng, nil
}
