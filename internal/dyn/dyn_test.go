package dyn

import (
	"math"
	"testing"

	"suu/internal/core"
	"suu/internal/model"
	"suu/internal/sched"
	"suu/internal/sim"
	"suu/internal/solve"
)

func fixture() (*model.Instance, sched.Policy) {
	in := model.New(6, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 6; j++ {
			in.P[i][j] = 0.25 + 0.1*float64(i+j)/9
		}
	}
	in.Prec.MustEdge(0, 2)
	in.Prec.MustEdge(1, 3)
	in.Prec.MustEdge(2, 4)
	pol := &sched.Oblivious{
		M:     3,
		Steps: []sched.Assignment{{0, 1, 5}, {0, 1, 5}},
		Tail:  &sched.TopoRoundRobin{M: 3, Order: []int{0, 1, 2, 3, 4, 5}},
	}
	return in, pol
}

func TestScenarioValidation(t *testing.T) {
	in, _ := fixture()
	cases := map[string]*Scenario{
		"job range":       New(in).ArriveAt(9, 3),
		"negative step":   New(in).ArriveAt(0, -1),
		"machine range":   New(in).Breakdown(7, 0, 4),
		"empty interval":  New(in).Breakdown(0, 5, 5),
		"regime machine":  New(in).AddRegime(Regime{Machine: -2}),
		"regime prob":     New(in).AddRegime(Regime{Machine: 0, GoodToBad: 1.5}),
		"regime severity": New(in).AddRegime(Regime{Machine: 0, Severity: -0.1}),
	}
	for name, sc := range cases {
		if sc.Validate() == nil {
			t.Errorf("%s: expected a validation error", name)
		}
	}
	if err := New(in).ArriveAt(0, 3).Breakdown(1, 2, 5).Burst(-1, 0.1, 0.9, 0.5).Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
}

func TestBurstRegimeStationary(t *testing.T) {
	r := BurstRegime(0, 0.2, 0.9, 0.3)
	// Stationary bad probability gb/(gb+bg) must equal p0; persistence
	// 1-(gb+bg) must equal alpha.
	gotP0 := r.GoodToBad / (r.GoodToBad + r.BadToGood)
	if math.Abs(gotP0-0.2) > 1e-12 {
		t.Errorf("stationary bad prob %v, want 0.2", gotP0)
	}
	if alpha := 1 - (r.GoodToBad + r.BadToGood); math.Abs(alpha-0.9) > 1e-12 {
		t.Errorf("persistence %v, want 0.9", alpha)
	}
}

// opaquePolicy hides the concrete policy type so sim's estimator
// cannot compile it — pinning the comparison to the generic step
// engine, the one whose draw schedule the dynamic walk mirrors.
type opaquePolicy struct{ pol sched.Policy }

func (o opaquePolicy) Assign(st *sched.State) sched.Assignment { return o.pol.Assign(st) }

// A scenario whose only event lies beyond the horizon must force the
// dynamic walk (it is not Static) yet reproduce the generic engine's
// completion draws bit for bit.
func TestNoOpEventParity(t *testing.T) {
	in, rawPol := fixture()
	pol := opaquePolicy{pol: rawPol}
	sc := New(in).Breakdown(0, 1_000_000, 1_000_001)
	if sc.Static() {
		t.Fatal("scenario with an outage reported Static")
	}
	want, wantInc, wantEng := sim.EstimateInfo(in, pol, 500, 100000, 42)
	if wantEng.Engine != sim.EngineGeneric {
		t.Fatalf("oracle engine %q, want generic", wantEng.Engine)
	}
	got, gotInc, eng, err := EstimateInfo(sc, NewStatic(sc, pol), 500, 100000, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Engine != sim.EngineDynamic {
		t.Fatalf("engine %q, want %q", eng.Engine, sim.EngineDynamic)
	}
	if got != want || gotInc != wantInc {
		t.Fatalf("dynamic walk diverged from static engine: %+v/%d vs %+v/%d", got, gotInc, want, wantInc)
	}
}

// A scenario with no events must delegate to the static engines and
// report the engine they chose, not the dynamic walk.
func TestZeroEventDelegation(t *testing.T) {
	in, pol := fixture()
	sc := New(in).ArriveAt(3, 0) // explicit step-0 arrival is still static
	if !sc.Static() {
		t.Fatal("event-free scenario not Static")
	}
	want, wantInc, wantEng := sim.EstimateParallelInfo(in, pol, 500, 100000, 7, 4)
	got, gotInc, eng, err := EstimateInfo(sc, NewStatic(sc, pol), 500, 100000, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Engine == sim.EngineDynamic {
		t.Fatal("static scenario ran the dynamic walk")
	}
	if eng != wantEng || got != want || gotInc != wantInc {
		t.Fatalf("delegation mismatch: %+v/%d/%+v vs %+v/%d/%+v", got, gotInc, eng, want, wantInc, wantEng)
	}
}

func dynamicScenario(in *model.Instance) *Scenario {
	return New(in).
		ArriveAt(5, 4).
		Breakdown(1, 2, 6).
		Burst(0, 0.2, 0.9, 0.3)
}

func TestWorkerCountInvariance(t *testing.T) {
	in, pol := fixture()
	strategies := func(sc *Scenario) []Strategy {
		roll, err := NewRolling(sc, "", core.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		return []Strategy{NewStatic(sc, pol), NewAdaptive(sc), roll}
	}
	sc := dynamicScenario(in)
	for _, strat := range strategies(sc) {
		seq, seqInc, _, err := EstimateInfo(sc, strat, 600, 100000, 11, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 2, 5} {
			got, gotInc, eng, err := EstimateInfo(sc, strat, 600, 100000, 11, workers)
			if err != nil {
				t.Fatal(err)
			}
			if got != seq || gotInc != seqInc {
				t.Fatalf("%s: workers=%d diverged: %+v/%d vs %+v/%d", strat.Name(), workers, got, gotInc, seq, seqInc)
			}
			if eng.Engine != sim.EngineDynamic {
				t.Fatalf("%s: engine %q", strat.Name(), eng.Engine)
			}
		}
	}
}

// Rolling on an event-free scenario must be bit-identical to solving
// the instance statically with the same params and estimating that
// policy — the zero-event regression pin at the dyn layer.
func TestRollingZeroEventMatchesStaticSolve(t *testing.T) {
	in, _ := fixture()
	par := core.DefaultParams()
	_, res, err := solve.Auto(in, par)
	if err != nil {
		t.Fatal(err)
	}
	want, wantInc, wantEng := sim.EstimateParallelInfo(in, res.Policy, 400, 100000, 3, 4)
	sc := New(in)
	roll, err := NewRolling(sc, "auto", par)
	if err != nil {
		t.Fatal(err)
	}
	got, gotInc, eng, err := EstimateInfo(sc, roll, 400, 100000, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != want || gotInc != wantInc || eng != wantEng {
		t.Fatalf("rolling zero-event diverged: %+v/%d/%+v vs %+v/%d/%+v", got, gotInc, eng, want, wantInc, wantEng)
	}
}

func TestRollingUnknownSolver(t *testing.T) {
	in, _ := fixture()
	if _, err := NewRolling(New(in), "no-such-solver", core.DefaultParams()); err == nil {
		t.Fatal("unknown solver accepted")
	}
}

func TestArrivalDelaysCompletion(t *testing.T) {
	in := model.New(1, 1)
	in.P[0][0] = 1
	sc := New(in).ArriveAt(0, 5)
	sum, inc, _, err := EstimateInfo(sc, NewAdaptive(sc), 8, 1000, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if inc != 0 || sum.Min != 6 || sum.Max != 6 {
		t.Fatalf("arrival at 5 with p=1: got %+v inc=%d, want deterministic makespan 6", sum, inc)
	}
}

func TestOutageBlocksMachine(t *testing.T) {
	in := model.New(1, 1)
	in.P[0][0] = 1
	sc := New(in).Breakdown(0, 0, 3)
	sum, inc, _, err := EstimateInfo(sc, NewAdaptive(sc), 8, 1000, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if inc != 0 || sum.Min != 4 || sum.Max != 4 {
		t.Fatalf("outage [0,3) with p=1: got %+v inc=%d, want deterministic makespan 4", sum, inc)
	}
}

// A total-failure burst (severity 0) entered immediately and never
// left must stall every trajectory at the step cap.
func TestSeverityZeroBurstStalls(t *testing.T) {
	in := model.New(1, 1)
	in.P[0][0] = 1
	sc := New(in).AddRegime(Regime{Machine: 0, GoodToBad: 1, BadToGood: 0, Severity: 0})
	sum, inc, _, err := EstimateInfo(sc, NewAdaptive(sc), 8, 50, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if inc != 8 || sum.Max != 50 {
		t.Fatalf("total burst: got %+v inc=%d, want all 8 stalled at cap 50", sum, inc)
	}
}

// Under a long outage of the strong machine, rolling (which plans
// around availability) must not do worse in expectation than a static
// schedule built for the full machine set.
func TestRollingAdaptsToOutage(t *testing.T) {
	in, _ := fixture()
	par := core.DefaultParams()
	_, res, err := solve.Auto(in, par)
	if err != nil {
		t.Fatal(err)
	}
	sc := New(in).Breakdown(0, 0, 40).Breakdown(1, 0, 40)
	roll, err := NewRolling(sc, "", par)
	if err != nil {
		t.Fatal(err)
	}
	rollSum, _, _, err := EstimateInfo(sc, roll, 400, 100000, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	statSum, _, _, err := EstimateInfo(sc, NewStatic(sc, res.Policy), 400, 100000, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rollSum.Mean > statSum.Mean*1.05 {
		t.Fatalf("rolling mean %.3f worse than oblivious %.3f under outage", rollSum.Mean, statSum.Mean)
	}
}

func TestEstimateRejectsBadInput(t *testing.T) {
	in, pol := fixture()
	sc := New(in)
	if _, _, _, err := EstimateInfo(sc, NewStatic(sc, pol), 0, 100, 1, 1); err == nil {
		t.Fatal("reps=0 accepted")
	}
	bad := New(in).ArriveAt(99, 1)
	if _, _, _, err := EstimateInfo(bad, NewAdaptive(bad), 10, 100, 1, 1); err == nil {
		t.Fatal("invalid scenario accepted")
	}
}
