package dyn

import (
	"suu/internal/model"
	"suu/internal/sched"
	"suu/internal/sim"
)

// State is the scheduling state a dynamic-walk strategy sees at one
// step. It extends sched.State with the scenario's availability
// picture; the hidden regime is deliberately absent.
type State struct {
	// Unfinished[j] reports whether job j has not yet completed.
	Unfinished []bool
	// Eligible[j] reports whether j has arrived, is unfinished, and
	// every predecessor has completed.
	Eligible []bool
	// Arrived[j] reports whether j's release step has passed.
	Arrived []bool
	// Up[i] reports whether machine i is outside every outage.
	Up []bool
	// Step is the 0-based index of the step about to execute.
	Step int
	// Epoch marks steps at which the timeline changed (arrivals
	// landed, an outage boundary passed). Step 0 is always an epoch.
	// The rolling strategy re-solves exactly at epochs.
	Epoch bool
}

// Walker executes one strategy's decisions along a trajectory. A
// walker is owned by a single worker goroutine; Reset is called
// before every repetition.
type Walker interface {
	Reset()
	Assign(st *State) sched.Assignment
}

// walkState is the dynamic analogue of sim's runState: every buffer
// one trajectory needs, allocated once per worker. The step loop
// mirrors the static walk draw for draw — one uniform per touched job
// in machine-scan order — so a scenario whose events never fire
// produces bit-identical completion draws to the static generic
// engine. Regime transitions draw from a separate stream, so adding a
// regime never shifts the completion randomness.
type walkState struct {
	in   *model.Instance
	tl   *timeline
	p    []float64
	n, m int

	unfinished []bool
	eligible   []bool
	arrived    []bool
	up         []bool
	predsLeft  []int
	fail       []float64
	seen       []bool
	touched    []int
	bad        []bool
	remaining  int
	evt        int

	st State
}

func newWalkState(in *model.Instance, tl *timeline) *walkState {
	ws := &walkState{
		in:         in,
		tl:         tl,
		p:          in.Flat(),
		n:          in.N,
		m:          in.M,
		unfinished: make([]bool, in.N),
		eligible:   make([]bool, in.N),
		arrived:    make([]bool, in.N),
		up:         make([]bool, in.M),
		predsLeft:  make([]int, in.N),
		fail:       make([]float64, in.N),
		seen:       make([]bool, in.N),
		touched:    make([]int, 0, in.M),
		bad:        make([]bool, in.M),
	}
	ws.st = State{
		Unfinished: ws.unfinished,
		Eligible:   ws.eligible,
		Arrived:    ws.arrived,
		Up:         ws.up,
	}
	return ws
}

// reset restores the step-0 state: all jobs unfinished, jobs with
// release 0 arrived, machines up unless an outage starts at 0, all
// regimes good.
func (ws *walkState) reset() {
	for j := 0; j < ws.n; j++ {
		ws.unfinished[j] = true
		ws.predsLeft[j] = ws.in.Prec.InDeg(j)
		ws.arrived[j] = ws.tl.arrive[j] == 0
		ws.eligible[j] = ws.arrived[j] && ws.predsLeft[j] == 0
		ws.fail[j] = 0
	}
	for i := 0; i < ws.m; i++ {
		ws.up[i] = !ws.tl.downAt(i, 0)
		ws.bad[i] = false
	}
	ws.remaining = ws.n
	ws.evt = 0
}

// run executes one trajectory of walker w for at most maxSteps steps.
// rng feeds completion draws, reg the regime transitions. It returns
// the makespan (1-based step index of the last completion, or
// maxSteps at the cap) and whether every job finished.
func (ws *walkState) run(w Walker, maxSteps int, rng, reg sim.Rand) (int, bool) {
	ws.reset()
	w.Reset()
	n, m, p := ws.n, ws.m, ws.p
	for t := 0; t < maxSteps && ws.remaining > 0; t++ {
		epoch := t == 0
		for ws.evt < len(ws.tl.events) && ws.tl.events[ws.evt] == t {
			epoch = true
			ws.evt++
		}
		if epoch && t > 0 {
			for j := 0; j < n; j++ {
				if ws.tl.arrive[j] == t {
					ws.arrived[j] = true
					if ws.unfinished[j] && ws.predsLeft[j] == 0 {
						ws.eligible[j] = true
					}
				}
			}
			for i := 0; i < m; i++ {
				ws.up[i] = !ws.tl.downAt(i, t)
			}
		}
		if ws.tl.hasReg {
			// One transition draw per regime machine per step, in
			// machine order — a fixed draw schedule, so trajectories
			// stay reproducible whatever the policy does.
			for i := 0; i < m; i++ {
				if !ws.tl.regOn[i] {
					continue
				}
				u := reg.Float64()
				if ws.bad[i] {
					if u < ws.tl.reg[i].BadToGood {
						ws.bad[i] = false
					}
				} else if u < ws.tl.reg[i].GoodToBad {
					ws.bad[i] = true
				}
			}
		}
		ws.st.Step = t
		ws.st.Epoch = epoch
		a := w.Assign(&ws.st)
		ws.touched = ws.touched[:0]
		for i := 0; i < m; i++ {
			if !ws.up[i] {
				continue
			}
			j := a[i]
			if j == sched.Idle || j < 0 || j >= n || !ws.eligible[j] {
				continue
			}
			if !ws.seen[j] {
				ws.seen[j] = true
				ws.fail[j] = 1
				ws.touched = append(ws.touched, j)
			}
			pv := p[i*n+j]
			if ws.bad[i] {
				pv *= ws.tl.reg[i].Severity
			}
			ws.fail[j] *= 1 - pv
		}
		for _, j := range ws.touched {
			if rng.Float64() < 1-ws.fail[j] {
				ws.unfinished[j] = false
				ws.eligible[j] = false
				ws.remaining--
				for _, sj := range ws.in.Prec.Succs(j) {
					ws.predsLeft[sj]--
					if ws.predsLeft[sj] == 0 && ws.unfinished[sj] && ws.arrived[sj] {
						ws.eligible[sj] = true
					}
				}
			}
			ws.fail[j] = 0
			ws.seen[j] = false
		}
		if ws.remaining == 0 {
			return t + 1, true
		}
	}
	return maxSteps, ws.remaining == 0
}
