package dyn

import (
	"fmt"

	"suu/internal/core"
	"suu/internal/lp"
	"suu/internal/model"
	"suu/internal/sched"
	"suu/internal/sim"
	"suu/internal/solve"
)

// RollingStrategy is the rolling-horizon re-solver: at every event
// epoch it extracts the surviving sub-instance — arrived unfinished
// jobs whose unfinished predecessors survive too and that some up
// machine can run, over the up machines — and re-invokes a registry
// solver on it, then plays the resulting schedule (translated back to
// global indices) until the next epoch.
//
// Determinism under sharding is load-bearing here: plans are cached
// per (surviving-jobs, up-machines) key, the construction seed of a
// keyed solve derives from the key alone, and the warm-start donor is
// fixed (the initial full solve's exported LP basis, adopted by the
// core only when row-compatible). A cached plan is therefore a pure
// function of its key, so trajectories are bit-identical however
// repetitions are distributed over workers.
type RollingStrategy struct {
	sc     *Scenario
	tl     *timeline
	solver string
	par    core.Params

	initKey string
	initial *plan
	// warm is the initial solve's exported optimal basis
	// (solve.Result.LPBasis, non-nil only for direct sparse LP
	// constructions). Every epoch re-solve offers it through
	// core.Params.WarmBasis → lp.SolveFrom; the core adopts it when
	// the sub-LP's row count matches and synthesizes a crash basis
	// otherwise.
	warm *lp.Basis
}

// NewRolling builds the rolling strategy for sc. solverID names a
// registry solver ("" or "auto" dispatches per sub-instance class);
// par seeds the constructions — the initial full solve uses par.Seed
// itself, which is what makes an event-free scenario's plan
// bit-identical to solve.Auto on the original instance. The initial
// solve runs eagerly so configuration errors surface here, not mid-
// walk.
func NewRolling(sc *Scenario, solverID string, par core.Params) (*RollingStrategy, error) {
	if solverID == "auto" {
		solverID = ""
	}
	if solverID != "" {
		if _, ok := solve.Get(solverID); !ok {
			return nil, fmt.Errorf("dyn: unknown solver %q", solverID)
		}
	}
	tl, err := sc.compile()
	if err != nil {
		return nil, err
	}
	s := &RollingStrategy{sc: sc, tl: tl, solver: solverID, par: par}
	n, m := sc.In.N, sc.In.M
	keep := make([]bool, n)
	up := make([]bool, m)
	arrived := make([]bool, n)
	unfinished := make([]bool, n)
	for j := 0; j < n; j++ {
		arrived[j] = tl.arrive[j] == 0
		unfinished[j] = true
	}
	for i := 0; i < m; i++ {
		up[i] = !tl.downAt(i, 0)
	}
	s.computeKeep(arrived, unfinished, up, keep)
	pl, basis, err := s.buildPlan(keep, up, par.Seed, nil)
	if err != nil {
		return nil, err
	}
	s.initial, s.warm = pl, basis
	s.initKey = packKey(keep, up)
	return s, nil
}

// Name implements Strategy.
func (s *RollingStrategy) Name() string { return "rolling" }

// StaticPolicy implements Strategy: on an event-free scenario the
// only epoch is step 0 and the surviving sub-instance is the full
// instance, so the initial plan's policy is the whole strategy.
func (s *RollingStrategy) StaticPolicy() (sched.Policy, bool) {
	if s.sc.Static() && s.initial.pol != nil {
		return s.initial.pol, true
	}
	return nil, false
}

// parallelizable defers to the registry flag of the configured solver
// (auto dispatches to oblivious constructions, all parallelizable).
// Walkers own their plan caches; only the initial plan's policy is
// shared.
func (s *RollingStrategy) parallelizable() bool {
	if s.solver == "" {
		return true
	}
	sv, ok := solve.Get(s.solver)
	return ok && sv.Parallelizable
}

// NewWalker implements Strategy. Each walker owns a plan cache
// pre-seeded with the shared initial plan; identical keys reached by
// different walkers rebuild identical plans (key-pure seeds), so the
// duplication costs time, never determinism.
func (s *RollingStrategy) NewWalker() Walker {
	n, m := s.sc.In.N, s.sc.In.M
	return &rollingWalker{
		s:       s,
		cache:   map[string]*plan{s.initKey: s.initial},
		keep:    make([]bool, n),
		subUnf:  make([]bool, n),
		subElig: make([]bool, n),
		out:     make(sched.Assignment, m),
	}
}

// plan is one cached sub-solve: the built policy in sub-instance
// index space plus the translation maps. Immutable after
// construction — walkers keep their own projection scratch.
type plan struct {
	// idle marks an empty sub-instance (nothing runnable until the
	// next epoch).
	idle bool
	// fallback marks a failed sub-solve: the walker plays masked MSM
	// until the next epoch instead. Deterministic (the same key fails
	// identically everywhere), so sharding still byte-matches.
	fallback bool
	pol      sched.Policy
	// mToSub maps global machine → sub machine (-1 = down).
	mToSub []int
	// jGlobal maps sub job → global job.
	jGlobal []int
}

type rollingWalker struct {
	s        *RollingStrategy
	cache    map[string]*plan
	cur      *plan
	curStart int
	keep     []bool
	subUnf   []bool
	subElig  []bool
	out      sched.Assignment
	subState sched.State
}

func (w *rollingWalker) Reset() {
	w.cur = nil
	w.curStart = 0
}

func (w *rollingWalker) Assign(st *State) sched.Assignment {
	if st.Epoch || w.cur == nil {
		w.replan(st)
	}
	pl := w.cur
	if pl.fallback {
		return core.MSMAlgMasked(w.s.sc.In, st.Eligible, st.Up)
	}
	for i := range w.out {
		w.out[i] = sched.Idle
	}
	if pl.idle {
		return w.out
	}
	// Project the global state into sub indices (predecessors outside
	// the sub are finished by construction, so eligibility carries
	// over unchanged), ask the sub policy, translate back.
	for k, gj := range pl.jGlobal {
		w.subUnf[k] = st.Unfinished[gj]
		w.subElig[k] = st.Eligible[gj]
	}
	w.subState = sched.State{
		Unfinished: w.subUnf[:len(pl.jGlobal)],
		Eligible:   w.subElig[:len(pl.jGlobal)],
		Step:       st.Step - w.curStart,
	}
	sub := pl.pol.Assign(&w.subState)
	for i, si := range pl.mToSub {
		if si < 0 {
			continue
		}
		js := sub[si]
		if js == sched.Idle || js < 0 || js >= len(pl.jGlobal) {
			continue
		}
		w.out[i] = pl.jGlobal[js]
	}
	return w.out
}

// replan computes the surviving sub-instance key for the current
// state and installs its plan, building and caching it on a miss.
func (w *rollingWalker) replan(st *State) {
	w.s.computeKeep(st.Arrived, st.Unfinished, st.Up, w.keep)
	key := packKey(w.keep, st.Up)
	pl, ok := w.cache[key]
	if !ok {
		seed := keySeed(w.s.par.Seed, w.keep, st.Up)
		var err error
		pl, _, err = w.s.buildPlan(w.keep, st.Up, seed, w.s.warm)
		if err != nil {
			pl = &plan{fallback: true}
		}
		w.cache[key] = pl
	}
	w.cur = pl
	w.curStart = st.Step
}

// computeKeep marks the surviving jobs in topological order: arrived,
// unfinished, runnable by some up machine, and with no unfinished
// predecessor outside the kept set (such a job cannot start before
// the next epoch anyway, and including it would hand the sub-solver a
// dangling precedence edge).
func (s *RollingStrategy) computeKeep(arrived, unfinished, up, keep []bool) {
	in := s.sc.In
	for _, j := range s.tl.topo {
		k := arrived[j] && unfinished[j]
		if k {
			capable := false
			for i := 0; i < in.M; i++ {
				if up[i] && in.P[i][j] > 0 {
					capable = true
					break
				}
			}
			k = capable
		}
		if k {
			for _, pr := range in.Prec.Preds(j) {
				if unfinished[pr] && !keep[pr] {
					k = false
					break
				}
			}
		}
		keep[j] = k
	}
}

// buildPlan solves the sub-instance selected by (keep, up) with the
// configured solver, seed and warm-basis donor. When the selection is
// the full instance it solves the original model.Instance directly —
// identical edge insertion order, so the plan (and for an event-free
// scenario the whole strategy) is bit-identical to solving the
// instance statically.
func (s *RollingStrategy) buildPlan(keep, up []bool, seed int64, warm *lp.Basis) (*plan, *lp.Basis, error) {
	in := s.sc.In
	jGlobal := make([]int, 0, in.N)
	subIdx := make([]int, in.N)
	for j := 0; j < in.N; j++ {
		subIdx[j] = -1
		if keep[j] {
			subIdx[j] = len(jGlobal)
			jGlobal = append(jGlobal, j)
		}
	}
	mToSub := make([]int, in.M)
	mGlobal := make([]int, 0, in.M)
	for i := 0; i < in.M; i++ {
		mToSub[i] = -1
		if up[i] {
			mToSub[i] = len(mGlobal)
			mGlobal = append(mGlobal, i)
		}
	}
	if len(jGlobal) == 0 || len(mGlobal) == 0 {
		return &plan{idle: true}, nil, nil
	}
	target := in
	if len(jGlobal) < in.N || len(mGlobal) < in.M {
		sub := model.New(len(jGlobal), len(mGlobal))
		for si, gi := range mGlobal {
			for sj, gj := range jGlobal {
				sub.P[si][sj] = in.P[gi][gj]
			}
		}
		for sj, gj := range jGlobal {
			for _, gs := range in.Prec.Succs(gj) {
				if subIdx[gs] >= 0 {
					sub.Prec.MustEdge(sj, subIdx[gs])
				}
			}
		}
		target = sub
	}
	par := s.par
	par.Seed = seed
	par.WarmBasis = warm
	var res *solve.Result
	var err error
	if s.solver == "" {
		_, res, err = solve.Auto(target, par)
	} else {
		sv, _ := solve.Get(s.solver)
		res, err = sv.Build(target, par)
	}
	if err != nil {
		return nil, nil, err
	}
	return &plan{pol: res.Policy, mToSub: mToSub, jGlobal: jGlobal}, res.LPBasis, nil
}

// packKey encodes (keep, up) as a compact byte string — the plan
// cache key. Lengths are fixed per scenario, so bit-packing is
// unambiguous.
func packKey(keep, up []bool) string {
	buf := make([]byte, 0, (len(keep)+len(up))/8+2)
	var acc byte
	nbits := 0
	push := func(b bool) {
		acc <<= 1
		if b {
			acc |= 1
		}
		nbits++
		if nbits == 8 {
			buf = append(buf, acc)
			acc, nbits = 0, 0
		}
	}
	for _, b := range keep {
		push(b)
	}
	for _, b := range up {
		push(b)
	}
	if nbits > 0 {
		buf = append(buf, acc<<(8-nbits))
	}
	return string(buf)
}

// keySeed derives a sub-solve's construction seed from the plan key
// alone (mask words fed through sim.SeedFor), never from which
// trajectory or worker triggered the solve — the purity that keeps
// rolling estimates worker-count- and shard-invariant.
func keySeed(root int64, keep, up []bool) int64 {
	return sim.SeedFor(sim.SeedFor(root, "roll-keep", maskWords(keep)...), "roll-up", maskWords(up)...)
}

// maskWords packs a boolean mask into 64-bit words for seed
// derivation.
func maskWords(mask []bool) []int64 {
	words := make([]int64, (len(mask)+63)/64)
	for idx, b := range mask {
		if b {
			words[idx/64] |= 1 << uint(idx%64)
		}
	}
	return words
}
