package dyn

import (
	"fmt"
	"sort"

	"suu/internal/model"
)

// Arrival releases a job: before step At the job is invisible to
// policies (not eligible, not counted as a predecessor obstacle it
// could clear). At 0 the job is present from the start.
type Arrival struct {
	Job, At int
}

// Outage takes a machine down for the half-open step interval
// [From, To): assignments to it during the interval are ignored (the
// machine idles), and the rolling strategy plans around it.
type Outage struct {
	Machine, From, To int
}

// Regime is a hidden two-state (good/bad) Markov chain on one
// machine. Each step the machine transitions (good→bad with
// probability GoodToBad, bad→good with BadToGood) and, while bad,
// every p_ij on the machine is scaled by Severity. The state is
// hidden: policies see the static probabilities, only the completion
// draws feel the modulation.
type Regime struct {
	// Machine the regime rides on; -1 applies it to every machine.
	Machine int
	// GoodToBad and BadToGood are the per-step transition
	// probabilities.
	GoodToBad, BadToGood float64
	// Severity multiplies p_ij while the machine is bad (0 = total
	// failure burst, 1 = no effect).
	Severity float64
}

// BurstRegime converts the mixture parameterization of two-regime
// error models — stationary bad fraction p0 and persistence alpha
// (the probability the chain stays in its current regime) — into the
// equivalent Markov transition rates: good→bad = (1−α)·p0,
// bad→good = (1−α)·(1−p0), whose stationary bad probability is
// exactly p0 and whose regime autocorrelation is α.
func BurstRegime(machine int, p0, alpha, severity float64) Regime {
	return Regime{
		Machine:   machine,
		GoodToBad: (1 - alpha) * p0,
		BadToGood: (1 - alpha) * (1 - p0),
		Severity:  severity,
	}
}

// Scenario is a static instance plus a deterministic event timeline.
// Build one with New and the chainable ArriveAt/Breakdown/Burst
// methods; estimation compiles the timeline on entry, so a scenario
// must not be mutated while an estimate runs.
type Scenario struct {
	In *model.Instance

	arrive  []int
	outages []Outage
	regimes []Regime
	err     error
}

// New returns a scenario over in with no events: every job present at
// step 0, every machine up forever, no regimes. Estimating it is
// bit-identical to the static pipeline.
func New(in *model.Instance) *Scenario {
	return &Scenario{In: in, arrive: make([]int, in.N)}
}

// seterr records the first builder error for Validate to report, so
// the chainable builder never needs per-call error returns.
func (s *Scenario) seterr(err error) {
	if s.err == nil {
		s.err = err
	}
}

// ArriveAt releases job at step (0 = present from the start).
func (s *Scenario) ArriveAt(job, step int) *Scenario {
	if job < 0 || job >= s.In.N {
		s.seterr(fmt.Errorf("dyn: ArriveAt job %d out of range [0,%d)", job, s.In.N))
		return s
	}
	if step < 0 {
		s.seterr(fmt.Errorf("dyn: ArriveAt step %d negative", step))
		return s
	}
	s.arrive[job] = step
	return s
}

// Breakdown takes machine down for steps [from, to).
func (s *Scenario) Breakdown(machine, from, to int) *Scenario {
	if machine < 0 || machine >= s.In.M {
		s.seterr(fmt.Errorf("dyn: Breakdown machine %d out of range [0,%d)", machine, s.In.M))
		return s
	}
	if from < 0 || to <= from {
		s.seterr(fmt.Errorf("dyn: Breakdown interval [%d,%d) invalid", from, to))
		return s
	}
	s.outages = append(s.outages, Outage{Machine: machine, From: from, To: to})
	return s
}

// Burst attaches a hidden failure-burst regime in the mixture
// parameterization (see BurstRegime); machine -1 bursts every
// machine. A p0 of 0 is a no-op.
func (s *Scenario) Burst(machine int, p0, alpha, severity float64) *Scenario {
	if p0 == 0 {
		return s
	}
	return s.AddRegime(BurstRegime(machine, p0, alpha, severity))
}

// AddRegime attaches an explicit Markov regime.
func (s *Scenario) AddRegime(r Regime) *Scenario {
	if r.Machine < -1 || r.Machine >= s.In.M {
		s.seterr(fmt.Errorf("dyn: regime machine %d out of range", r.Machine))
		return s
	}
	if bad := func(p float64) bool { return p < 0 || p > 1 }; bad(r.GoodToBad) || bad(r.BadToGood) || bad(r.Severity) {
		s.seterr(fmt.Errorf("dyn: regime probabilities and severity must lie in [0,1]"))
		return s
	}
	s.regimes = append(s.regimes, r)
	return s
}

// Validate reports the first builder error or an invalid underlying
// instance.
func (s *Scenario) Validate() error {
	if s.err != nil {
		return s.err
	}
	return s.In.Validate()
}

// Static reports whether the scenario has no effective events — the
// case the estimator delegates to the static engines.
func (s *Scenario) Static() bool {
	for _, at := range s.arrive {
		if at > 0 {
			return false
		}
	}
	return len(s.outages) == 0 && len(s.regimes) == 0
}

// timeline is the compiled form of a scenario's events, shared
// read-only by every walker of an estimation call.
type timeline struct {
	arrive []int
	// events lists the step times > 0 at which the availability
	// picture changes (arrivals land, outage boundaries pass), sorted
	// and deduplicated. Step-0 state is handled by reset.
	events []int
	topo   []int
	downs  [][]Outage
	reg    []Regime
	regOn  []bool
	hasReg bool
}

// compile validates the scenario and precomputes the timeline.
func (s *Scenario) compile() (*timeline, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	topo, err := s.In.Prec.TopoOrder()
	if err != nil {
		return nil, err
	}
	tl := &timeline{
		arrive: s.arrive,
		topo:   topo,
		downs:  make([][]Outage, s.In.M),
		reg:    make([]Regime, s.In.M),
		regOn:  make([]bool, s.In.M),
	}
	set := map[int]bool{}
	for _, at := range s.arrive {
		if at > 0 {
			set[at] = true
		}
	}
	for _, o := range s.outages {
		tl.downs[o.Machine] = append(tl.downs[o.Machine], o)
		if o.From > 0 {
			set[o.From] = true
		}
		set[o.To] = true
	}
	for _, r := range s.regimes {
		if r.Machine < 0 {
			for i := range tl.reg {
				tl.reg[i] = r
				tl.regOn[i] = true
			}
		} else {
			tl.reg[r.Machine] = r
			tl.regOn[r.Machine] = true
		}
	}
	for _, on := range tl.regOn {
		if on {
			tl.hasReg = true
			break
		}
	}
	for t := range set {
		tl.events = append(tl.events, t)
	}
	sort.Ints(tl.events)
	return tl, nil
}

// downAt reports whether machine i is inside an outage at step t.
// Machines carry at most a handful of intervals, so a linear scan at
// event epochs beats materializing per-step availability.
func (tl *timeline) downAt(i, t int) bool {
	for _, o := range tl.downs[i] {
		if o.From <= t && t < o.To {
			return true
		}
	}
	return false
}
