// Package dyn layers deterministic dynamics over a static SUU
// instance: job arrivals (a job is invisible and ineligible before its
// release step), machine breakdown/recovery intervals (assignments to
// a down machine are ignored), and a hidden per-machine good/bad
// Markov regime that scales p_ij while the machine is in its bad
// state — the time-correlated failure-burst model, parameterized the
// way two-regime mixture error models are (stationary bad fraction
// and persistence).
//
// A Scenario is the static model.Instance plus that event timeline.
// Strategies walk it: Static replays any fixed policy obliviously to
// the dynamics, Adaptive reruns the masked MSM greedy on the eligible
// jobs and up machines each step, and Rolling re-invokes a registry
// solver on the surviving sub-instance at every event epoch (reusing
// the initial solve's exported LP basis as the warm-start donor via
// core.Params.WarmBasis).
//
// Estimation mirrors internal/sim's chunked contract: repetition r
// draws its completion stream from (seed, r) and its regime stream
// from (SeedFor(seed, "regime"), r), chunks of 256 repetitions merge
// in index order, and rolling re-solves are cached per (surviving
// jobs, up machines) key with key-derived construction seeds — so
// every summary is bit-identical at any worker count and under any
// shard tiling. A scenario with no events delegates to the static
// engines (compiled, lane, splice paths included) and is therefore
// bit-identical to the static pipeline by construction.
package dyn
