package dyn

import (
	"suu/internal/core"
	"suu/internal/model"
	"suu/internal/sched"
	"suu/internal/sim"
)

// StaticStrategy replays a fixed policy obliviously to the dynamics:
// the policy sees the standard sched.State (unfinished/eligible/step)
// and nothing about outages or arrivals; assignments to down machines
// are simply wasted. It is the degrading baseline every dynamic table
// compares against — and the evaluator for "how would my deployed
// schedule have fared under this scenario".
type StaticStrategy struct {
	sc  *Scenario
	pol sched.Policy
}

// NewStatic wraps pol for walks over sc.
func NewStatic(sc *Scenario, pol sched.Policy) *StaticStrategy {
	return &StaticStrategy{sc: sc, pol: pol}
}

// Name implements Strategy.
func (s *StaticStrategy) Name() string { return "static" }

// StaticPolicy implements Strategy: the wrapped policy is its own
// event-free equivalent.
func (s *StaticStrategy) StaticPolicy() (sched.Policy, bool) { return s.pol, true }

// parallelizable defers to the engine's check: walkers share the
// wrapped policy, so an outcome-observing policy pins the fan-out to
// one worker exactly as the static estimators do.
func (s *StaticStrategy) parallelizable() bool { return sim.Parallelizable(s.pol) }

// NewWalker implements Strategy.
func (s *StaticStrategy) NewWalker() Walker { return &staticWalker{pol: s.pol} }

type staticWalker struct {
	pol sched.Policy
	st  sched.State
}

func (w *staticWalker) Reset() {}

func (w *staticWalker) Assign(st *State) sched.Assignment {
	w.st.Unfinished = st.Unfinished
	w.st.Eligible = st.Eligible
	w.st.Step = st.Step
	return w.pol.Assign(&w.st)
}

// AdaptiveStrategy reruns the MSM greedy every step on the currently
// eligible jobs and up machines (core.MSMAlgMasked) — SUU-I-ALG made
// availability-aware. It reads the static probabilities only: the
// hidden regime stays hidden.
type AdaptiveStrategy struct {
	sc *Scenario
}

// NewAdaptive returns the masked-MSM strategy for sc.
func NewAdaptive(sc *Scenario) *AdaptiveStrategy { return &AdaptiveStrategy{sc: sc} }

// Name implements Strategy.
func (s *AdaptiveStrategy) Name() string { return "adaptive" }

// StaticPolicy implements Strategy: with every machine up the masked
// greedy coincides with SUU-I-ALG exactly, which the compiled
// adaptive engine can memoize.
func (s *AdaptiveStrategy) StaticPolicy() (sched.Policy, bool) {
	return &core.AdaptivePolicy{In: s.sc.In}, true
}

func (s *AdaptiveStrategy) parallelizable() bool { return true }

// NewWalker implements Strategy.
func (s *AdaptiveStrategy) NewWalker() Walker { return &adaptiveWalker{in: s.sc.In} }

type adaptiveWalker struct {
	in *model.Instance
}

func (w *adaptiveWalker) Reset() {}

func (w *adaptiveWalker) Assign(st *State) sched.Assignment {
	return core.MSMAlgMasked(w.in, st.Eligible, st.Up)
}
