package maxflow

import (
	"math/rand"
	"testing"
)

func TestSimplePath(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 3)
	if f := g.MaxFlow(0, 2); f != 3 {
		t.Errorf("flow=%d, want 3", f)
	}
}

func TestParallelPaths(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 2)
	g.AddEdge(0, 2, 2)
	g.AddEdge(1, 3, 2)
	g.AddEdge(2, 3, 2)
	if f := g.MaxFlow(0, 3); f != 4 {
		t.Errorf("flow=%d, want 4", f)
	}
}

func TestClassicCLRS(t *testing.T) {
	// CLRS figure 26.6 network; max flow 23.
	g := New(6)
	g.AddEdge(0, 1, 16)
	g.AddEdge(0, 2, 13)
	g.AddEdge(1, 3, 12)
	g.AddEdge(2, 1, 4)
	g.AddEdge(2, 4, 14)
	g.AddEdge(3, 2, 9)
	g.AddEdge(3, 5, 20)
	g.AddEdge(4, 3, 7)
	g.AddEdge(4, 5, 4)
	if f := g.MaxFlow(0, 5); f != 23 {
		t.Errorf("flow=%d, want 23", f)
	}
}

func TestDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 10)
	g.AddEdge(2, 3, 10)
	if f := g.MaxFlow(0, 3); f != 0 {
		t.Errorf("flow=%d, want 0", f)
	}
}

func TestEdgeFlowsConserveAndRespectCaps(t *testing.T) {
	g := New(5)
	ids := []int{
		g.AddEdge(0, 1, 4),
		g.AddEdge(0, 2, 3),
		g.AddEdge(1, 3, 2),
		g.AddEdge(2, 3, 5),
		g.AddEdge(1, 2, 1),
		g.AddEdge(3, 4, 6),
	}
	caps := []int64{4, 3, 2, 5, 1, 6}
	total := g.MaxFlow(0, 4)
	if total != 6 {
		t.Fatalf("flow=%d, want 6", total)
	}
	// Flow on each edge within capacity and conservation at internal nodes.
	net := make([]int64, 5)
	from := []int{0, 0, 1, 2, 1, 3}
	to := []int{1, 2, 3, 3, 2, 4}
	for k, id := range ids {
		f := g.Flow(id)
		if f < 0 || f > caps[k] {
			t.Errorf("edge %d flow %d outside [0,%d]", k, f, caps[k])
		}
		net[from[k]] -= f
		net[to[k]] += f
	}
	for v := 1; v <= 3; v++ {
		if net[v] != 0 {
			t.Errorf("conservation violated at %d: %d", v, net[v])
		}
	}
	if net[0] != -total || net[4] != total {
		t.Errorf("source/sink imbalance: %v (total %d)", net, total)
	}
}

// Reference Ford–Fulkerson (BFS augmenting paths) for cross-checking.
func edmondsKarp(n int, edges [][3]int64, s, t int) int64 {
	capm := make([][]int64, n)
	for i := range capm {
		capm[i] = make([]int64, n)
	}
	for _, e := range edges {
		capm[e[0]][e[1]] += e[2]
	}
	var total int64
	for {
		parent := make([]int, n)
		for i := range parent {
			parent[i] = -1
		}
		parent[s] = s
		q := []int{s}
		for len(q) > 0 && parent[t] == -1 {
			u := q[0]
			q = q[1:]
			for v := 0; v < n; v++ {
				if parent[v] == -1 && capm[u][v] > 0 {
					parent[v] = u
					q = append(q, v)
				}
			}
		}
		if parent[t] == -1 {
			return total
		}
		aug := int64(1) << 62
		for v := t; v != s; v = parent[v] {
			if capm[parent[v]][v] < aug {
				aug = capm[parent[v]][v]
			}
		}
		for v := t; v != s; v = parent[v] {
			capm[parent[v]][v] -= aug
			capm[v][parent[v]] += aug
		}
		total += aug
	}
}

func TestAgainstEdmondsKarpRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(10)
		m := rng.Intn(3 * n)
		var edges [][3]int64
		g := New(n)
		for k := 0; k < m; k++ {
			u := rng.Intn(n)
			v := rng.Intn(n)
			if u == v {
				continue
			}
			c := int64(rng.Intn(10))
			g.AddEdge(u, v, c)
			edges = append(edges, [3]int64{int64(u), int64(v), c})
		}
		want := edmondsKarp(n, edges, 0, n-1)
		if got := g.MaxFlow(0, n-1); got != want {
			t.Fatalf("trial %d: dinic=%d, edmonds-karp=%d", trial, got, want)
		}
	}
}

func TestPanics(t *testing.T) {
	check := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	check("out-of-range", func() { New(2).AddEdge(0, 5, 1) })
	check("negative-cap", func() { New(2).AddEdge(0, 1, -1) })
	check("s==t", func() { New(2).MaxFlow(1, 1) })
}
