package maxflow

import "fmt"

// Graph is a flow network over vertices 0..n-1.
type Graph struct {
	n    int
	head [][]int // adjacency: indices into edges
	// edges are stored in pairs: edge e and its reverse e^1.
	to  []int
	cap []int64
}

// New returns an empty network with n vertices.
func New(n int) *Graph {
	if n <= 0 {
		panic("maxflow: network needs at least one vertex")
	}
	return &Graph{n: n, head: make([][]int, n)}
}

// N returns the vertex count.
func (g *Graph) N() int { return g.n }

// AddEdge inserts a directed edge u->v with the given capacity and
// returns its edge id, usable with Flow after a MaxFlow run.
func (g *Graph) AddEdge(u, v int, capacity int64) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("maxflow: edge (%d,%d) out of range [0,%d)", u, v, g.n))
	}
	if capacity < 0 {
		panic("maxflow: negative capacity")
	}
	id := len(g.to)
	g.to = append(g.to, v, u)
	g.cap = append(g.cap, capacity, 0)
	g.head[u] = append(g.head[u], id)
	g.head[v] = append(g.head[v], id+1)
	return id
}

// Flow returns the flow currently routed along edge id (after MaxFlow).
func (g *Graph) Flow(id int) int64 {
	return g.cap[id^1]
}

// MaxFlow computes the maximum s→t flow (Dinic's algorithm,
// O(V²E) worst case, far faster on the unit-ish bipartite networks
// used here). It may be called once per graph.
func (g *Graph) MaxFlow(s, t int) int64 {
	if s == t {
		panic("maxflow: source equals sink")
	}
	level := make([]int, g.n)
	iter := make([]int, g.n)
	queue := make([]int, 0, g.n)

	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		queue = queue[:0]
		queue = append(queue, s)
		level[s] = 0
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, e := range g.head[u] {
				if g.cap[e] > 0 && level[g.to[e]] == -1 {
					level[g.to[e]] = level[u] + 1
					queue = append(queue, g.to[e])
				}
			}
		}
		return level[t] != -1
	}

	var dfs func(u int, f int64) int64
	dfs = func(u int, f int64) int64 {
		if u == t {
			return f
		}
		for ; iter[u] < len(g.head[u]); iter[u]++ {
			e := g.head[u][iter[u]]
			v := g.to[e]
			if g.cap[e] <= 0 || level[v] != level[u]+1 {
				continue
			}
			d := f
			if g.cap[e] < d {
				d = g.cap[e]
			}
			got := dfs(v, d)
			if got > 0 {
				g.cap[e] -= got
				g.cap[e^1] += got
				return got
			}
		}
		return 0
	}

	const inf = int64(1) << 62
	var flow int64
	for bfs() {
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := dfs(s, inf)
			if f == 0 {
				break
			}
			flow += f
		}
	}
	return flow
}
