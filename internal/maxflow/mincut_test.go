package maxflow

import (
	"math/rand"
	"testing"
)

// TestMaxFlowMinCut verifies strong duality on random graphs: after
// MaxFlow, the set S of vertices reachable from the source in the
// residual graph defines a cut whose original capacity equals the flow
// value (max-flow = min-cut).
func TestMaxFlowMinCut(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(12)
		type edge struct {
			u, v int
			c    int64
			id   int
		}
		var edges []edge
		g := New(n)
		for k := 0; k < 3*n; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			c := int64(rng.Intn(12))
			id := g.AddEdge(u, v, c)
			edges = append(edges, edge{u, v, c, id})
		}
		s, snk := 0, n-1
		flow := g.MaxFlow(s, snk)

		// Residual reachability: an edge has residual capacity iff its
		// remaining cap > 0; reverse arcs have residual equal to the
		// routed flow.
		reach := make([]bool, n)
		reach[s] = true
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, e := range edges {
				if e.u == u && !reach[e.v] && e.c-g.Flow(e.id) > 0 {
					reach[e.v] = true
					queue = append(queue, e.v)
				}
				if e.v == u && !reach[e.u] && g.Flow(e.id) > 0 {
					reach[e.u] = true
					queue = append(queue, e.u)
				}
			}
		}
		if reach[snk] {
			t.Fatalf("trial %d: sink reachable in residual graph after max flow", trial)
		}
		var cut int64
		for _, e := range edges {
			if reach[e.u] && !reach[e.v] {
				cut += e.c
			}
		}
		if cut != flow {
			t.Fatalf("trial %d: min cut %d != max flow %d", trial, cut, flow)
		}
	}
}
