// Package maxflow implements Dinic's maximum-flow algorithm on
// integer-capacity networks. It is the rounding engine of Theorem 4.1
// of Lin & Rajaraman (SPAA 2007): an integral maximum flow on the
// job/machine network extracts integral assignments x̂_ij from the
// fractional LP solution (integrality follows from Ford–Fulkerson).
package maxflow
